//! The span-scoped flight recorder.
//!
//! A [`Recorder`] accumulates an ordered stream of [`Event`]s —
//! `stage_start`, `stage_end`, nested `span_start`/`span_end`,
//! `counter_snapshot` and `note` — that reconstructs what the pipeline
//! did, in the order it did it. Every deterministic field derives from
//! pipeline data only; wall clocks are quarantined in the event's
//! `nondeterministic` JSONL section so the rest of the line is
//! byte-identical at any worker count.
//!
//! # Hierarchical spans
//!
//! Stages (`stage_start`/`stage_end`) and spans
//! ([`Recorder::span_start`]/[`Recorder::span_end`]) share one nesting
//! stack. A span's *path* is the `;`-joined chain of open frame names
//! (`"sweep;probe-round;region-2"`), the same shape a collapsed-stack
//! flamegraph line uses. Span IDs are **deterministic**: each ID is a
//! pure hash of `(parent span ID, frame name, occurrence index among
//! same-name siblings)`, so two runs producing the same event structure
//! produce the same IDs at any worker count — IDs never derive from
//! pointers, clocks or thread identity.
//!
//! A span carries named *cost counters* (probes launched, memo lookups,
//! bytes encoded, pool merges, …) that must themselves be deterministic;
//! its wall clock rides in the existing quarantined section.

use crate::registry::{MetricValue, Snapshot};
use std::fmt::Write as _;
use std::sync::Mutex;

/// What one [`Event`] records.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A pipeline stage began.
    StageStart {
        /// The stage name (the pipeline's own, e.g. `"sweep"`).
        stage: &'static str,
    },
    /// A pipeline stage finished.
    StageEnd {
        /// The stage name matching the preceding `StageStart`.
        stage: &'static str,
        /// Named groups of `(counter, value)` pairs attributed to this
        /// stage (route-memo deltas, fault-impact deltas), in recording
        /// order.
        groups: Vec<(&'static str, Vec<(&'static str, u64)>)>,
    },
    /// A nested span opened beneath the current stage/span frame.
    SpanStart {
        /// Full `;`-joined path, innermost frame last.
        path: String,
        /// Deterministic span ID (see module docs).
        id: u64,
    },
    /// The innermost open span closed.
    SpanEnd {
        /// Full `;`-joined path, matching the opening `SpanStart`.
        path: String,
        /// Deterministic span ID matching the opening `SpanStart`.
        id: u64,
        /// Deterministic cost counters attributed to this span, in
        /// recording order.
        costs: Vec<(&'static str, u64)>,
    },
    /// A full registry snapshot taken at this point of the stream.
    CounterSnapshot {
        /// The frozen registry state.
        snapshot: Snapshot,
    },
    /// A free-form annotation.
    Note {
        /// The annotation text.
        text: String,
    },
}

/// One entry of the flight-recorder stream.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Position in the stream, dense from zero.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Wall-clock duration in milliseconds (stage-end events only).
    /// Nondeterministic: excluded from the deterministic JSONL rendering.
    pub wall_ms: Option<f64>,
    /// Counter groups whose values depend on execution interleaving —
    /// e.g. a shared cache's hit/miss split, where two workers can both
    /// miss the same key before either populates it. Rendered only inside
    /// the `nondeterministic` JSONL section, next to the wall clock.
    pub nondet_groups: Vec<(&'static str, Vec<(&'static str, u64)>)>,
}

/// One open frame of the span stack: a stage or a span that has started
/// but not yet ended.
#[derive(Debug)]
struct Frame {
    /// The frame's own name (one path component).
    name: String,
    /// The frame's deterministic span ID.
    id: u64,
    /// How many children of each name this frame has opened so far —
    /// the occurrence index that disambiguates same-name siblings in
    /// the ID derivation. A linear list: fan-out per frame is small.
    child_counts: Vec<(String, u64)>,
}

/// Recorder state behind one lock: the event stream plus the span stack
/// that events are recorded against. Index 0 is a permanent root frame
/// (empty name, ID 0) that anchors top-level stages and spans; it is
/// never popped and never rendered.
#[derive(Debug)]
struct State {
    events: Vec<Event>,
    stack: Vec<Frame>,
}

impl State {
    fn new() -> Self {
        State {
            events: Vec::new(),
            stack: vec![Frame {
                name: String::new(),
                id: 0,
                child_counts: Vec::new(),
            }],
        }
    }

    fn push_event(
        &mut self,
        kind: EventKind,
        wall_ms: Option<f64>,
        nondet_groups: Vec<(&'static str, Vec<(&'static str, u64)>)>,
    ) {
        let seq = self.events.len() as u64;
        self.events.push(Event {
            seq,
            kind,
            wall_ms,
            nondet_groups,
        });
    }

    /// Opens a frame under the current top: bumps the parent's
    /// occurrence count for `name`, derives the deterministic span ID
    /// and pushes the frame. Returns the new frame's `(path, id)`.
    fn open_frame(&mut self, name: &str) -> (String, u64) {
        let parent = match self.stack.last_mut() {
            Some(p) => p,
            // The root frame is never popped; defend anyway.
            None => {
                self.stack.push(Frame {
                    name: String::new(),
                    id: 0,
                    child_counts: Vec::new(),
                });
                match self.stack.last_mut() {
                    Some(p) => p,
                    // cm-lint: panic-safe(the root frame was pushed on the line above, so last_mut is Some)
                    None => unreachable!("just pushed the root frame"),
                }
            }
        };
        let occurrence = match parent.child_counts.iter_mut().find(|(n, _)| n == name) {
            Some((_, c)) => {
                let o = *c;
                *c += 1;
                o
            }
            None => {
                parent.child_counts.push((name.to_string(), 1));
                0
            }
        };
        let id = span_id(parent.id, name, occurrence);
        self.stack.push(Frame {
            name: name.to_string(),
            id,
            child_counts: Vec::new(),
        });
        (self.path(), id)
    }

    /// Closes the top frame, asserting (in debug builds) that it matches
    /// `name` — unbalanced nesting is a caller bug. Returns the closing
    /// frame's `(path, id)`; the path is computed *before* the pop so it
    /// includes the frame itself.
    fn close_frame(&mut self, name: &str) -> (String, u64) {
        let path = self.path();
        debug_assert!(
            self.stack.len() > 1,
            "unbalanced span nesting: close of {name:?} with no open frame"
        );
        debug_assert!(
            self.stack.last().is_none_or(|f| f.name == name),
            "unbalanced span nesting: close of {name:?} but {:?} is open",
            self.stack.last().map(|f| f.name.clone())
        );
        // Release builds degrade gracefully: pop whatever is on top (but
        // never the root), keeping the stream well-formed enough to read.
        let id = if self.stack.len() > 1 {
            match self.stack.pop() {
                Some(f) => f.id,
                None => 0,
            }
        } else {
            0
        };
        (path, id)
    }

    /// The `;`-joined names of every open frame, root excluded.
    fn path(&self) -> String {
        let names: Vec<&str> = self.stack[1..].iter().map(|f| f.name.as_str()).collect();
        names.join(";")
    }
}

/// One round of the splitmix64 finalizer — the same permutation
/// `cm-net::stablehash` builds on, reimplemented locally because
/// `cm-obs` is dependency-free by design.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic span-ID derivation: a pure function of the parent's
/// ID, the frame name and the occurrence index among same-name siblings.
fn span_id(parent: u64, name: &str, occurrence: u64) -> u64 {
    let mut h = splitmix64(parent ^ 0x005B_A71D);
    for b in name.as_bytes() {
        h = splitmix64(h ^ u64::from(*b));
    }
    splitmix64(h ^ occurrence)
}

/// An append-only, thread-safe event stream with a hierarchical span
/// stack (see the module docs).
pub struct Recorder {
    state: Mutex<State>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            state: Mutex::new(State::new()),
        }
    }
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Records the start of a stage and opens its span frame.
    pub fn stage_start(&self, stage: &'static str) {
        let mut state = self.lock();
        state.open_frame(stage);
        state.push_event(EventKind::StageStart { stage }, None, Vec::new());
    }

    /// Records the end of a stage: its wall clock, the deterministic
    /// per-stage counter groups, and any interleaving-dependent groups
    /// (quarantined with the wall clock). Closes the stage's span frame;
    /// debug builds assert every span opened inside the stage was closed.
    pub fn stage_end(
        &self,
        stage: &'static str,
        wall_ms: f64,
        groups: Vec<(&'static str, Vec<(&'static str, u64)>)>,
        nondet_groups: Vec<(&'static str, Vec<(&'static str, u64)>)>,
    ) {
        let mut state = self.lock();
        state.close_frame(stage);
        state.push_event(
            EventKind::StageEnd { stage, groups },
            Some(wall_ms),
            nondet_groups,
        );
    }

    /// Opens a span nested under the innermost open stage/span and
    /// records its `span_start` event. Returns the deterministic span ID.
    pub fn span_start(&self, name: &str) -> u64 {
        let mut state = self.lock();
        let (path, id) = state.open_frame(name);
        state.push_event(EventKind::SpanStart { path, id }, None, Vec::new());
        id
    }

    /// Closes the innermost open span — which must be named `name`
    /// (debug builds assert balance) — and records its `span_end` event
    /// carrying deterministic `costs`; the optional wall clock lands in
    /// the quarantined section.
    pub fn span_end(&self, name: &str, wall_ms: Option<f64>, costs: Vec<(&'static str, u64)>) {
        let mut state = self.lock();
        let (path, id) = state.close_frame(name);
        state.push_event(EventKind::SpanEnd { path, id, costs }, wall_ms, Vec::new());
    }

    /// Records a full registry snapshot.
    pub fn counter_snapshot(&self, snapshot: Snapshot) {
        self.lock()
            .push_event(EventKind::CounterSnapshot { snapshot }, None, Vec::new());
    }

    /// Records a free-form note.
    pub fn note(&self, text: impl Into<String>) {
        self.lock()
            .push_event(EventKind::Note { text: text.into() }, None, Vec::new());
    }

    /// A copy of the stream so far, in order.
    pub fn events(&self) -> Vec<Event> {
        self.lock().events.clone()
    }
}

/// Minimal JSON string escaping (the recorder only ever holds ASCII
/// identifiers and short notes, but quotes and backslashes must not break
/// the line format).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn snapshot_json(snapshot: &Snapshot) -> String {
    let mut parts = Vec::with_capacity(snapshot.metrics.len());
    for (name, value) in &snapshot.metrics {
        let rendered = match value {
            MetricValue::Counter(c) => format!("\"{}\": {c}", json_escape(name)),
            MetricValue::Gauge(g) => format!("\"{}\": {g}", json_escape(name)),
            MetricValue::Histogram(h) => {
                let bounds: Vec<String> = h.bounds.iter().map(|b| format!("{b:?}")).collect();
                let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
                format!(
                    "\"{}\": {{\"bounds\": [{}], \"counts\": [{}], \"overflow\": {}, \
                     \"rejected\": {}}}",
                    json_escape(name),
                    bounds.join(", "),
                    counts.join(", "),
                    h.overflow,
                    h.rejected
                )
            }
        };
        parts.push(rendered);
    }
    format!("{{{}}}", parts.join(", "))
}

/// Renders one event as a single JSONL line (no trailing newline).
///
/// Deterministic fields come first; when `include_nondeterministic` is set
/// and the event carries a wall clock, a final `"nondeterministic"` object
/// holds it. Rendering with the flag off is the *deterministic portion* of
/// the trace: byte-identical at any worker count.
pub fn event_jsonl(event: &Event, include_nondeterministic: bool) -> String {
    let mut line = format!("{{\"seq\": {}", event.seq);
    match &event.kind {
        EventKind::StageStart { stage } => {
            let _ = write!(line, ", \"event\": \"stage_start\", \"stage\": \"{stage}\"");
        }
        EventKind::StageEnd { stage, groups } => {
            let _ = write!(line, ", \"event\": \"stage_end\", \"stage\": \"{stage}\"");
            for (group, counters) in groups {
                let fields: Vec<String> = counters
                    .iter()
                    .map(|(name, v)| format!("\"{name}\": {v}"))
                    .collect();
                let _ = write!(line, ", \"{group}\": {{{}}}", fields.join(", "));
            }
        }
        EventKind::SpanStart { path, id } => {
            let _ = write!(
                line,
                ", \"event\": \"span_start\", \"path\": \"{}\", \"span_id\": \"{id:#018x}\"",
                json_escape(path)
            );
        }
        EventKind::SpanEnd { path, id, costs } => {
            let _ = write!(
                line,
                ", \"event\": \"span_end\", \"path\": \"{}\", \"span_id\": \"{id:#018x}\"",
                json_escape(path)
            );
            let fields: Vec<String> = costs
                .iter()
                .map(|(name, v)| format!("\"{name}\": {v}"))
                .collect();
            let _ = write!(line, ", \"costs\": {{{}}}", fields.join(", "));
        }
        EventKind::CounterSnapshot { snapshot } => {
            let _ = write!(
                line,
                ", \"event\": \"counter_snapshot\", \"metrics\": {}",
                snapshot_json(snapshot)
            );
        }
        EventKind::Note { text } => {
            let _ = write!(
                line,
                ", \"event\": \"note\", \"text\": \"{}\"",
                json_escape(text)
            );
        }
    }
    if include_nondeterministic && (event.wall_ms.is_some() || !event.nondet_groups.is_empty()) {
        let mut parts = Vec::with_capacity(1 + event.nondet_groups.len());
        if let Some(wall_ms) = event.wall_ms {
            parts.push(format!("\"wall_ms\": {wall_ms:?}"));
        }
        for (group, counters) in &event.nondet_groups {
            let fields: Vec<String> = counters
                .iter()
                .map(|(name, v)| format!("\"{name}\": {v}"))
                .collect();
            parts.push(format!("\"{group}\": {{{}}}", fields.join(", ")));
        }
        let _ = write!(line, ", \"nondeterministic\": {{{}}}", parts.join(", "));
    }
    line.push('}');
    line
}

/// Renders a whole stream as JSONL, one event per line.
pub fn render_jsonl(events: &[Event], include_nondeterministic: bool) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event_jsonl(event, include_nondeterministic));
        out.push('\n');
    }
    out
}

/// Renders the stream as a human-readable stage tree: one row per stage
/// with its wall clock and counter groups, notes and snapshots indented
/// beneath the stage they follow.
pub fn stage_tree(events: &[Event]) -> String {
    let mut out = String::from("flight recorder\n");
    for event in events {
        match &event.kind {
            EventKind::StageStart { .. } => {}
            EventKind::StageEnd { stage, groups } => {
                let wall = event
                    .wall_ms
                    .map_or_else(|| "      -  ".to_string(), |ms| format!("{ms:>9.3}ms"));
                let _ = write!(out, "├─ {stage:<12} {wall}");
                for (group, counters) in groups.iter().chain(&event.nondet_groups) {
                    let fields: Vec<String> = counters
                        .iter()
                        .map(|(name, v)| format!("{name}={v}"))
                        .collect();
                    let _ = write!(out, "  {group}[{}]", fields.join(" "));
                }
                out.push('\n');
            }
            EventKind::SpanStart { .. } => {}
            EventKind::SpanEnd { path, costs, .. } => {
                // Indent one level per path component beyond the stage.
                let depth = path.matches(';').count();
                let _ = write!(out, "│  {}· {path}", "  ".repeat(depth));
                if !costs.is_empty() {
                    let fields: Vec<String> = costs
                        .iter()
                        .map(|(name, v)| format!("{name}={v}"))
                        .collect();
                    let _ = write!(out, " [{}]", fields.join(" "));
                }
                if let Some(ms) = event.wall_ms {
                    let _ = write!(out, " {ms:.3}ms");
                }
                out.push('\n');
            }
            EventKind::CounterSnapshot { snapshot } => {
                let _ = writeln!(out, "│    · snapshot: {} metrics", snapshot.metrics.len());
            }
            EventKind::Note { text } => {
                let _ = writeln!(out, "│    · note: {text}");
            }
        }
    }
    out
}

/// Renders the event stream as collapsed flamegraph stacks — one
/// `path value` line per distinct span path, inferno-compatible.
///
/// Each closing stage/span contributes its **self** value (inclusive
/// minus the sum of its children's inclusive values) so a flamegraph
/// tool summing the stacks does not double-count nesting. With
/// `counter = Some(name)` the value is that deterministic cost counter
/// (stages without it contribute only through their children); with
/// `None` the value is the quarantined wall clock in whole microseconds
/// — useful for profiling, but nondeterministic by nature. Same-path
/// frames (loops) aggregate; paths render in lexicographic order and
/// zero-self lines are dropped, so the output is deterministic whenever
/// the chosen values are.
pub fn collapsed_stacks(events: &[Event], counter: Option<&str>) -> String {
    let wall_us = |e: &Event| {
        e.wall_ms
            .map_or(0u64, |ms| (ms * 1000.0).max(0.0).round() as u64)
    };
    let mut stack: Vec<Open> = Vec::new();
    let mut totals: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for event in events {
        match &event.kind {
            EventKind::StageStart { stage } => stack.push(Open {
                path: (*stage).to_string(),
                child_sum: 0,
            }),
            EventKind::SpanStart { path, .. } => stack.push(Open {
                path: path.clone(),
                child_sum: 0,
            }),
            EventKind::StageEnd { groups, .. } => {
                let Some(frame) = stack.pop() else { continue };
                let inclusive = match counter {
                    Some(name) => groups
                        .iter()
                        .flat_map(|(_, counters)| counters.iter())
                        .filter(|(n, _)| *n == name)
                        .map(|(_, v)| *v)
                        .sum(),
                    None => wall_us(event),
                };
                settle(
                    &mut stack,
                    &mut totals,
                    frame.path,
                    inclusive,
                    frame.child_sum,
                );
            }
            EventKind::SpanEnd { costs, .. } => {
                let Some(frame) = stack.pop() else { continue };
                let inclusive = match counter {
                    Some(name) => costs
                        .iter()
                        .filter(|(n, _)| *n == name)
                        .map(|(_, v)| *v)
                        .sum(),
                    None => wall_us(event),
                };
                settle(
                    &mut stack,
                    &mut totals,
                    frame.path,
                    inclusive,
                    frame.child_sum,
                );
            }
            EventKind::CounterSnapshot { .. } | EventKind::Note { .. } => {}
        }
    }
    let mut out = String::new();
    for (path, value) in &totals {
        let _ = writeln!(out, "{path} {value}");
    }
    out
}

/// One open frame of the collapsed-stack replay in
/// [`collapsed_stacks`].
struct Open {
    path: String,
    child_sum: u64,
}

/// Folds one closing frame into the collapsed-stack accumulator: credits
/// the parent with the frame's inclusive value and the totals with its
/// self value.
fn settle(
    stack: &mut [Open],
    totals: &mut std::collections::BTreeMap<String, u64>,
    path: String,
    inclusive: u64,
    child_sum: u64,
) {
    // A parent whose own value is smaller than its children's sum (a
    // counter only recorded on leaves) still propagates the larger sum.
    let inclusive = inclusive.max(child_sum);
    if let Some(parent) = stack.last_mut() {
        parent.child_sum += inclusive;
    }
    let self_value = inclusive - child_sum;
    if self_value > 0 {
        *totals.entry(path).or_default() += self_value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Recorder {
        let rec = Recorder::new();
        let reg = Registry::new();
        reg.inc("probes", 2);
        rec.stage_start("sweep");
        rec.stage_end(
            "sweep",
            12.5,
            vec![("fault_impact", vec![("blackhole", 4)])],
            vec![("route_memo", vec![("hits", 3), ("misses", 1)])],
        );
        rec.counter_snapshot(reg.snapshot());
        rec.note("done");
        rec
    }

    #[test]
    fn events_are_ordered_and_dense() {
        let events = sample().events();
        assert_eq!(events.len(), 4);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn jsonl_segregates_wall_clock_and_nondet_groups() {
        let events = sample().events();
        let det = render_jsonl(&events, false);
        let full = render_jsonl(&events, true);
        assert!(!det.contains("nondeterministic"));
        assert!(!det.contains("wall_ms"));
        assert!(!det.contains("route_memo"), "cache split leaked:\n{det}");
        assert!(det.contains("\"fault_impact\": {\"blackhole\": 4}"));
        assert!(full.contains(
            "\"nondeterministic\": {\"wall_ms\": 12.5, \
             \"route_memo\": {\"hits\": 3, \"misses\": 1}}"
        ));
        // Stripping the nondeterministic section recovers the
        // deterministic rendering line for line.
        for (d, f) in det.lines().zip(full.lines()) {
            assert!(f.starts_with(d.trim_end_matches('}')));
        }
    }

    #[test]
    fn jsonl_renders_every_event_kind() {
        let events = sample().events();
        let full = render_jsonl(&events, true);
        assert!(full.contains("\"event\": \"stage_start\", \"stage\": \"sweep\""));
        assert!(full.contains("\"route_memo\": {\"hits\": 3, \"misses\": 1}"));
        assert!(full.contains("\"event\": \"counter_snapshot\", \"metrics\": {\"probes\": 2}"));
        assert!(full.contains("\"event\": \"note\", \"text\": \"done\""));
    }

    #[test]
    fn note_text_is_escaped() {
        let rec = Recorder::new();
        rec.note("say \"hi\"\\\n");
        let line = render_jsonl(&rec.events(), false);
        assert!(line.contains("\"text\": \"say \\\"hi\\\"\\\\\\n\""));
    }

    #[test]
    fn stage_tree_shows_stages_and_notes() {
        let tree = stage_tree(&sample().events());
        assert!(tree.contains("├─ sweep"));
        assert!(tree.contains("route_memo[hits=3 misses=1]"));
        assert!(tree.contains("· note: done"));
        assert!(tree.contains("· snapshot: 1 metrics"));
    }

    /// A stage with nested spans, a note interleaved inside the nesting,
    /// and per-span costs + wall clocks.
    fn nested() -> Recorder {
        let rec = Recorder::new();
        rec.stage_start("sweep");
        rec.span_start("targets");
        rec.span_end("targets", None, vec![("targets", 7)]);
        rec.span_start("probe-round");
        rec.note("inside a span");
        rec.span_start("region-0");
        rec.span_end("region-0", None, vec![("probes", 10)]);
        rec.span_start("region-1");
        rec.span_end("region-1", Some(1.25), vec![("probes", 20)]);
        rec.span_end("probe-round", Some(3.5), vec![("probes", 30)]);
        rec.stage_end("sweep", 12.5, Vec::new(), Vec::new());
        rec
    }

    #[test]
    fn span_paths_nest_under_stages() {
        let events = nested().events();
        let paths: Vec<&str> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::SpanEnd { path, .. } => Some(path.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(
            paths,
            [
                "sweep;targets",
                "sweep;probe-round;region-0",
                "sweep;probe-round;region-1",
                "sweep;probe-round",
            ]
        );
    }

    #[test]
    fn span_ids_are_deterministic_and_distinguish_siblings() {
        // Identical structure => identical streams, IDs included.
        assert_eq!(nested().events(), nested().events());
        let ids = |rec: &Recorder| -> Vec<(String, u64)> {
            rec.events()
                .iter()
                .filter_map(|e| match &e.kind {
                    EventKind::SpanStart { path, id } => Some((path.clone(), *id)),
                    _ => None,
                })
                .collect()
        };
        // Same-name siblings under one parent get distinct IDs via the
        // occurrence index; distinct names differ trivially.
        let rec = Recorder::new();
        rec.stage_start("s");
        rec.span_start("g");
        rec.span_end("g", None, Vec::new());
        rec.span_start("g");
        rec.span_end("g", None, Vec::new());
        rec.stage_end("s", 0.0, Vec::new(), Vec::new());
        let got = ids(&rec);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, got[1].0, "same path for same-name siblings");
        assert_ne!(got[0].1, got[1].1, "occurrence index must split IDs");
    }

    #[test]
    fn span_jsonl_quarantines_wall_but_keeps_costs() {
        let events = nested().events();
        let det = render_jsonl(&events, false);
        let full = render_jsonl(&events, true);
        assert!(det.contains("\"event\": \"span_end\", \"path\": \"sweep;probe-round;region-1\""));
        assert!(det.contains("\"costs\": {\"probes\": 20}"));
        assert!(!det.contains("wall_ms"));
        assert!(
            full.contains("\"costs\": {\"probes\": 20}, \"nondeterministic\": {\"wall_ms\": 1.25}")
        );
        // A note inside nested spans renders as a plain note event.
        assert!(det.contains("\"event\": \"note\", \"text\": \"inside a span\""));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unbalanced span nesting")]
    fn unbalanced_span_nesting_debug_asserts() {
        let rec = Recorder::new();
        rec.stage_start("sweep");
        rec.span_start("outer");
        rec.span_start("inner");
        // Closing `outer` while `inner` is still open is a caller bug.
        rec.span_end("outer", None, Vec::new());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unbalanced span nesting")]
    fn span_end_without_open_frame_debug_asserts() {
        Recorder::new().span_end("ghost", None, Vec::new());
    }

    #[test]
    fn collapsed_stacks_attribute_self_cost_per_path() {
        let events = nested().events();
        let by_probes = collapsed_stacks(&events, Some("probes"));
        // probe-round's 30 probes are fully accounted by its two region
        // children (10 + 20): self is zero, so only leaves appear.
        assert_eq!(
            by_probes,
            "sweep;probe-round;region-0 10\nsweep;probe-round;region-1 20\n"
        );
        let by_wall = collapsed_stacks(&events, None);
        // Wall mode: 12.5ms stage minus 3.5ms probe-round = 9000µs self;
        // probe-round 3500µs minus region-1's 1250µs = 2250µs self.
        assert_eq!(
            by_wall,
            "sweep 9000\nsweep;probe-round 2250\nsweep;probe-round;region-1 1250\n"
        );
    }
}

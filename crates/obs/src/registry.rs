//! The deterministic metrics registry.
//!
//! A [`Registry`] holds named counters, gauges and fixed-bucket histograms
//! behind one mutex. The determinism contract (DESIGN.md §10): a metric
//! value may derive **only** from pipeline data — probe outcomes, pool
//! sizes, cache counters — never from wall clock, thread identity or
//! iteration order of an unordered map. Every recording site upholds that
//! by construction (per-probe increments are order-independent sums;
//! bulk exports read atomics or sorted collections), so a [`Snapshot`] is
//! byte-identical at any `probe_workers` count.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// One recorded metric value inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time level (a set size, a pool count).
    Gauge(i64),
    /// A fixed-bucket histogram; see [`HistogramValue`].
    Histogram(HistogramValue),
}

/// The frozen state of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramValue {
    /// Ascending upper bucket bounds (finite; the overflow bucket is
    /// implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts, one per bound.
    pub counts: Vec<u64>,
    /// Observations above the last bound.
    pub overflow: u64,
    /// Observations rejected as NaN, infinite or negative.
    pub rejected: u64,
}

impl HistogramValue {
    /// Accepted observations (all buckets plus the overflow bucket).
    pub fn count(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }
}

enum Metric {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramValue),
}

/// A thread-safe, name-keyed metrics store.
///
/// Names are fixed ASCII identifiers (`[a-z0-9_]`), chosen by the
/// recording sites; the snapshot orders them lexicographically, so the
/// exposition text is canonical.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn with<R>(&self, f: impl FnOnce(&mut BTreeMap<String, Metric>) -> R) -> R {
        let mut guard = match self.metrics.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    /// Adds `by` to the counter `name`, creating it at zero first.
    ///
    /// Recording into a name already registered with a different kind is a
    /// programming error; the call is ignored in release builds.
    pub fn inc(&self, name: &str, by: u64) {
        self.with(|m| {
            match m
                .entry(name.to_string())
                .or_insert_with(|| Metric::Counter(0))
            {
                Metric::Counter(c) => *c += by,
                _ => debug_assert!(false, "metric {name} is not a counter"),
            }
        });
    }

    /// Sets the gauge `name` to `value`, creating it if absent.
    pub fn set_gauge(&self, name: &str, value: i64) {
        self.with(|m| {
            match m
                .entry(name.to_string())
                .or_insert_with(|| Metric::Gauge(0))
            {
                Metric::Gauge(g) => *g = value,
                _ => debug_assert!(false, "metric {name} is not a gauge"),
            }
        });
    }

    /// Registers the histogram `name` with the given ascending finite
    /// upper bounds (idempotent; bounds of an existing histogram are kept).
    pub fn histogram(&self, name: &str, bounds: &[f64]) {
        debug_assert!(
            bounds.iter().all(|b| b.is_finite())
                && bounds.windows(2).all(|w| w[0].total_cmp(&w[1]).is_lt()),
            "histogram {name} bounds must be finite and strictly ascending"
        );
        self.with(|m| {
            m.entry(name.to_string()).or_insert_with(|| {
                Metric::Histogram(HistogramValue {
                    bounds: bounds.to_vec(),
                    counts: vec![0; bounds.len()],
                    overflow: 0,
                    rejected: 0,
                })
            });
        });
    }

    /// Records one observation into the histogram `name`.
    ///
    /// NaN, infinite and negative values are counted as rejected, never
    /// bucketed — comparisons use `total_cmp`, so `-0.0` lands in the
    /// first bucket rather than the reject pile. Returns `true` when the
    /// value was bucketed.
    pub fn observe(&self, name: &str, value: f64) -> bool {
        self.with(|m| match m.get_mut(name) {
            Some(Metric::Histogram(h)) => {
                if !value.is_finite() || value.total_cmp(&-0.0).is_lt() {
                    h.rejected += 1;
                    return false;
                }
                match h.bounds.iter().position(|b| value.total_cmp(b).is_le()) {
                    Some(i) => h.counts[i] += 1,
                    None => h.overflow += 1,
                }
                true
            }
            _ => {
                debug_assert!(false, "histogram {name} is not registered");
                false
            }
        })
    }

    /// Merges pre-bucketed counts into the histogram `name` (which must
    /// already be registered with identical bounds).
    ///
    /// This is the bulk-replay half of the histogram API: the delta
    /// engine caches per-probe-group bucket counts and folds them back
    /// instead of re-observing every raw value. Bucket-count addition is
    /// commutative and bounds are fixed, so a replayed registry is
    /// byte-identical to one that observed each value live.
    pub fn merge_histogram(&self, name: &str, value: &HistogramValue) {
        self.with(|m| match m.get_mut(name) {
            Some(Metric::Histogram(h)) => {
                debug_assert_eq!(
                    h.bounds, value.bounds,
                    "histogram {name} merged with mismatched bounds"
                );
                if h.bounds == value.bounds {
                    for (c, add) in h.counts.iter_mut().zip(&value.counts) {
                        *c += add;
                    }
                    h.overflow += value.overflow;
                    h.rejected += value.rejected;
                }
            }
            _ => debug_assert!(false, "histogram {name} is not registered"),
        });
    }

    /// Freezes the registry into an ordered, comparable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        self.with(|m| Snapshot {
            metrics: m
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(*c),
                        Metric::Gauge(g) => MetricValue::Gauge(*g),
                        Metric::Histogram(h) => MetricValue::Histogram(h.clone()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        })
    }
}

/// An ordered, frozen copy of a [`Registry`].
///
/// Equal registries produce equal snapshots and byte-identical
/// [`Snapshot::expose`] text, which is what the worker-sweep invariance
/// tests compare.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Name → value, lexicographically ordered.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// The value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// The value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// The state of a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramValue> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Overwrites (or creates) the counter `name` — a forging hook for
    /// mutation tests and external tallies, not used by recording sites.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.metrics
            .insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Overwrites (or creates) the gauge `name` — the gauge counterpart
    /// of [`Snapshot::set_counter`], same mutation-test purpose.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.metrics
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Prometheus-style text exposition: a `# TYPE` line then the value
    /// lines for every metric, in name order. An empty histogram still
    /// renders all its `0` bucket lines, so the output shape never depends
    /// on whether anything was observed.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {g}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (bound, count) in h.bounds.iter().zip(&h.counts) {
                        cumulative += count;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    cumulative += h.overflow;
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    let _ = writeln!(out, "{name}_count {cumulative}");
                    let _ = writeln!(out, "{name}_rejected {}", h.rejected);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        r.inc("probes_total", 3);
        r.inc("probes_total", 2);
        r.set_gauge("pool_cbis", 7);
        r.set_gauge("pool_cbis", 9);
        let s = r.snapshot();
        assert_eq!(s.counter("probes_total"), Some(5));
        assert_eq!(s.gauge("pool_cbis"), Some(9));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn histogram_buckets_values_on_total_cmp_boundaries() {
        let r = Registry::new();
        r.histogram("rtt_ms", &[1.0, 10.0]);
        assert!(r.observe("rtt_ms", 0.0));
        assert!(r.observe("rtt_ms", -0.0), "-0.0 buckets via total_cmp");
        assert!(r.observe("rtt_ms", 1.0), "bounds are inclusive");
        assert!(r.observe("rtt_ms", 5.0));
        assert!(r.observe("rtt_ms", 100.0), "overflow still counts");
        let s = r.snapshot();
        let h = s.histogram("rtt_ms").unwrap();
        assert_eq!(h.counts, vec![3, 1]);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.rejected, 0);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn histogram_rejects_nan_negative_and_infinite() {
        let r = Registry::new();
        r.histogram("rtt_ms", &[1.0]);
        for bad in [f64::NAN, -1.0, f64::NEG_INFINITY, f64::INFINITY] {
            assert!(!r.observe("rtt_ms", bad), "{bad} must be rejected");
        }
        let s = r.snapshot();
        let h = s.histogram("rtt_ms").unwrap();
        assert_eq!(h.rejected, 4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.counts, vec![0]);
    }

    #[test]
    fn empty_histogram_exposition_is_deterministic_zero_lines() {
        let r = Registry::new();
        r.histogram("hops", &[4.0, 8.0]);
        let text = r.snapshot().expose();
        assert_eq!(
            text,
            "# TYPE hops histogram\n\
             hops_bucket{le=\"4\"} 0\n\
             hops_bucket{le=\"8\"} 0\n\
             hops_bucket{le=\"+Inf\"} 0\n\
             hops_count 0\n\
             hops_rejected 0\n"
        );
        assert_eq!(text, r.snapshot().expose());
    }

    #[test]
    fn exposition_orders_names_and_marks_types() {
        let r = Registry::new();
        r.set_gauge("zeta", 1);
        r.inc("alpha", 2);
        let text = r.snapshot().expose();
        assert_eq!(
            text,
            "# TYPE alpha counter\nalpha 2\n# TYPE zeta gauge\nzeta 1\n"
        );
    }

    #[test]
    fn merged_histogram_equals_live_observation() {
        let live = Registry::new();
        let replay = Registry::new();
        for r in [&live, &replay] {
            r.histogram("hops", &[4.0, 8.0]);
        }
        for v in [1.0, 4.0, 5.0, 9.0, f64::NAN] {
            live.observe("hops", v);
        }
        let cached = live.snapshot().histogram("hops").unwrap().clone();
        replay.merge_histogram("hops", &cached);
        replay.merge_histogram("hops", &cached);
        let h = replay.snapshot().histogram("hops").unwrap().clone();
        assert_eq!(h.counts, vec![4, 2]);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.rejected, 2);
        // One merge of one live snapshot is byte-identical exposition.
        let one = Registry::new();
        one.histogram("hops", &[4.0, 8.0]);
        one.merge_histogram("hops", &cached);
        assert_eq!(one.snapshot().expose(), live.snapshot().expose());
    }

    #[test]
    fn snapshot_equality_tracks_contents() {
        let a = Registry::new();
        let b = Registry::new();
        a.inc("x", 1);
        b.inc("x", 1);
        assert_eq!(a.snapshot(), b.snapshot());
        b.inc("x", 1);
        assert_ne!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn forged_counter_is_visible() {
        let mut s = Registry::new().snapshot();
        s.set_counter("probe_launched_total", 41);
        assert_eq!(s.counter("probe_launched_total"), Some(41));
    }
}

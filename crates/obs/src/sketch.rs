//! Fixed-window rolling quantile sketch.
//!
//! A [`RollingQuantile`] keeps the last `capacity` observations in a
//! ring buffer and answers arbitrary quantile queries over exactly that
//! window — no decaying weights, no randomized sampling. The mechanics
//! are fully deterministic: the same observation sequence produces the
//! same window contents and the same answers, so a sketch fed
//! deterministic values is itself deterministic, while one fed wall-clock
//! latencies inherits their nondeterminism (and must stay out of any
//! digest surface, like every other wall-clock reading).

/// A deterministic fixed-window quantile sketch over the most recent
/// `capacity` finite observations.
#[derive(Clone, Debug)]
pub struct RollingQuantile {
    /// Ring buffer of the newest observations, insertion order.
    window: Vec<f64>,
    /// Maximum window length.
    capacity: usize,
    /// Next ring slot to overwrite once the window is full.
    next: usize,
    /// Non-finite observations rejected by [`RollingQuantile::push`].
    rejected: u64,
    /// Total observations accepted over the sketch's lifetime.
    accepted: u64,
}

impl RollingQuantile {
    /// An empty sketch holding at most `capacity` observations
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RollingQuantile {
            window: Vec::with_capacity(capacity.min(4096)),
            capacity,
            next: 0,
            rejected: 0,
            accepted: 0,
        }
    }

    /// Observes one value. Non-finite values are rejected and counted,
    /// like the registry histograms do, so a NaN latency can never
    /// poison a quantile.
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            self.rejected += 1;
            return;
        }
        self.accepted += 1;
        if self.window.len() < self.capacity {
            self.window.push(value);
        } else {
            self.window[self.next] = value;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// The `q`-quantile (clamped to `[0, 1]`) of the current window,
    /// linearly interpolated between ranks (type-7, matching
    /// `cm-bench`'s `quantile`). `None` on an empty window.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let mut sorted = self.window.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = q * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
    }

    /// Observations currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no observation has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Non-finite observations rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Observations accepted over the sketch's lifetime (the window
    /// holds only the newest `capacity` of them).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// The window contents in insertion order, oldest first — the exact
    /// multiset the next [`RollingQuantile::quantile`] call answers
    /// over. Lets callers merge several sketches deterministically
    /// (concatenate windows, compute one quantile).
    pub fn window(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.window.len());
        if self.window.len() == self.capacity {
            out.extend_from_slice(&self.window[self.next..]);
            out.extend_from_slice(&self.window[..self.next]);
        } else {
            out.extend_from_slice(&self.window);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_interpolate_over_the_window() {
        let mut s = RollingQuantile::new(8);
        for v in [4.0, 1.0, 3.0, 2.0] {
            s.push(v);
        }
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(4.0));
        assert_eq!(s.quantile(0.5), Some(2.5));
        // Rank 0.25 * 3 = 0.75 between 1.0 and 2.0.
        assert_eq!(s.quantile(0.25), Some(1.75));
    }

    #[test]
    fn window_evicts_oldest_first() {
        let mut s = RollingQuantile::new(3);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.push(v);
        }
        assert_eq!(s.window(), vec![3.0, 4.0, 5.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.accepted(), 5);
        assert_eq!(s.quantile(1.0), Some(5.0));
        assert_eq!(s.quantile(0.0), Some(3.0));
    }

    #[test]
    fn non_finite_values_are_rejected_not_stored() {
        let mut s = RollingQuantile::new(4);
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        assert!(s.is_empty());
        assert_eq!(s.rejected(), 2);
        assert_eq!(s.quantile(0.5), None);
        s.push(7.0);
        assert_eq!(s.quantile(0.5), Some(7.0));
    }

    #[test]
    fn same_sequence_same_answers() {
        let feed = |s: &mut RollingQuantile| {
            for i in 0..100u32 {
                s.push(f64::from((i * 37) % 11));
            }
        };
        let (mut a, mut b) = (RollingQuantile::new(16), RollingQuantile::new(16));
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.window(), b.window());
        assert_eq!(a.quantile(0.99), b.quantile(0.99));
    }
}

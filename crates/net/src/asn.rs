//! Autonomous-system and organization identifiers.

use std::fmt;

/// An autonomous system number.
///
/// `Asn(0)` is reserved: the paper (§3) annotates hops from private or shared
/// address space with AS0, and inference code treats AS0 specially (it never
/// terminates the Amazon-internal portion of a traceroute).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asn(pub u32);

impl Asn {
    /// The reserved ASN used for private / shared / unrouted address space.
    pub const RESERVED: Asn = Asn(0);

    /// True if this is the reserved AS0 marker.
    pub const fn is_reserved(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

/// An organization identifier in the style of CAIDA's AS2ORG dataset.
///
/// Multiple ASNs may map to one organization (the paper observed eight
/// Amazon-owned ASNs, footnote 4); border inference walks hops until it
/// leaves the *organization*, not merely the ASN.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OrgId(pub u32);

impl OrgId {
    /// Organization id 0 mirrors AS0: address space without an owner.
    pub const RESERVED: OrgId = OrgId(0);

    /// True if this is the reserved marker.
    pub const fn is_reserved(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ORG{}", self.0)
    }
}

impl fmt::Debug for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ORG{}", self.0)
    }
}

impl From<u32> for OrgId {
    fn from(v: u32) -> Self {
        OrgId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_markers() {
        assert!(Asn::RESERVED.is_reserved());
        assert!(!Asn(7224).is_reserved());
        assert!(OrgId::RESERVED.is_reserved());
        assert!(!OrgId(1).is_reserved());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Asn(16509).to_string(), "AS16509");
        assert_eq!(OrgId(42).to_string(), "ORG42");
    }

    #[test]
    fn ordering() {
        assert!(Asn(1) < Asn(2));
        assert!(OrgId(1) < OrgId(2));
    }
}

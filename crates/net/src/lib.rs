//! # cm-net — addressing primitives for the cloudmap workspace
//!
//! This crate provides the small, dependency-free vocabulary used by every
//! other crate in the workspace:
//!
//! * [`Ipv4`] — a `u32`-backed IPv4 address with dotted-quad formatting and
//!   parsing, plus the arithmetic the probing engine needs (`+1` neighbours,
//!   /24 bucketing).
//! * [`Prefix`] — a CIDR prefix with containment checks and host iteration.
//! * [`PrefixTrie`] — a binary longest-prefix-match trie used for IP→ASN
//!   annotation from BGP snapshots and for IXP-prefix membership tests.
//! * [`Asn`] / [`OrgId`] — newtypes for autonomous-system and organization
//!   identifiers (CAIDA AS2ORG-style), including the paper's convention of
//!   `AS0` for private/shared address space.
//!
//! The types are deliberately plain: the simulator and the inference pipeline
//! exchange millions of them, so everything here is `Copy` where possible and
//! avoids allocation on the hot paths.

#![deny(missing_docs)]

pub mod addr;
pub mod asn;
pub mod prefix;
pub mod stablehash;
pub mod trie;

pub use addr::Ipv4;
pub use asn::{Asn, OrgId};
pub use prefix::{Prefix, PrefixParseError};
pub use trie::PrefixTrie;

//! CIDR prefixes.

use crate::addr::Ipv4;
use std::fmt;
use std::str::FromStr;

/// A CIDR prefix, canonicalized so that host bits below the mask are zero.
///
/// ```
/// use cm_net::{Ipv4, Prefix};
/// let p: Prefix = "203.0.113.0/24".parse().unwrap();
/// assert!(p.contains("203.0.113.200".parse().unwrap()));
/// assert!(!p.contains("203.0.114.1".parse().unwrap()));
/// assert_eq!(p.num_addresses(), 256);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    base: Ipv4,
    len: u8,
}

impl Prefix {
    /// Creates a prefix, masking away any host bits in `base`.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(base: Ipv4, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        Prefix {
            base: Ipv4(base.0 & Self::mask(len)),
            len,
        }
    }

    /// The /24 that contains `addr`.
    pub fn slash24_of(addr: Ipv4) -> Self {
        Prefix::new(addr, 24)
    }

    /// The netmask for a given prefix length.
    const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// The (masked) base address.
    pub const fn base(self) -> Ipv4 {
        self.base
    }

    /// The prefix length in bits. (A prefix always covers at least one
    /// address, so there is deliberately no `is_empty`.)
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the default route `0.0.0.0/0`.
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// Number of addresses covered (2^(32-len)), as u64 to fit /0.
    pub const fn num_addresses(self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// The last address inside the prefix.
    pub const fn last(self) -> Ipv4 {
        Ipv4(self.base.0 | !Self::mask(self.len))
    }

    /// Containment test.
    pub const fn contains(self, addr: Ipv4) -> bool {
        (addr.0 & Self::mask(self.len)) == self.base.0
    }

    /// True if `other` is fully contained in `self` (including equality).
    pub const fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains(other.base)
    }

    /// Iterates every address in the prefix, in order.
    ///
    /// Intended for small prefixes (the /24 expansion probing of §4.2 and
    /// the /30-/31 interconnect prefixes); iterating a /8 works but is slow.
    pub fn addresses(self) -> impl Iterator<Item = Ipv4> {
        let start = self.base.0 as u64;
        let n = self.num_addresses();
        (start..start + n).map(|v| Ipv4(v as u32))
    }

    /// Iterates the host addresses of the prefix: for prefixes shorter than
    /// /31 this skips the network and broadcast addresses; /31 and /32 yield
    /// all addresses (RFC 3021 point-to-point semantics).
    pub fn hosts(self) -> impl Iterator<Item = Ipv4> {
        let skip_edges = self.len < 31;
        let start = self.base.0 as u64;
        let n = self.num_addresses();
        let (lo, hi) = if skip_edges {
            (start + 1, start + n - 1)
        } else {
            (start, start + n)
        };
        (lo..hi).map(|v| Ipv4(v as u32))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({})", self)
    }
}

/// Error from parsing a `a.b.c.d/len` string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {:?}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError(s.into()))?;
        let base: Ipv4 = addr.parse().map_err(|_| PrefixParseError(s.into()))?;
        let len: u8 = len.parse().map_err(|_| PrefixParseError(s.into()))?;
        if len > 32 {
            return Err(PrefixParseError(s.into()));
        }
        Ok(Prefix::new(base, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_host_bits() {
        let p = Prefix::new("10.1.2.3".parse().unwrap(), 24);
        assert_eq!(p.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn parse_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "203.0.113.64/26", "1.2.3.4/32"] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_bad_len() {
        assert!("1.2.3.0/33".parse::<Prefix>().is_err());
        assert!("1.2.3.0".parse::<Prefix>().is_err());
        assert!("1.2.3/24".parse::<Prefix>().is_err());
    }

    #[test]
    fn containment() {
        let p: Prefix = "192.0.2.0/25".parse().unwrap();
        assert!(p.contains("192.0.2.0".parse().unwrap()));
        assert!(p.contains("192.0.2.127".parse().unwrap()));
        assert!(!p.contains("192.0.2.128".parse().unwrap()));
    }

    #[test]
    fn default_route_contains_everything() {
        let d: Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(d.contains("255.255.255.255".parse().unwrap()));
        assert!(d.is_default());
        assert_eq!(d.num_addresses(), 1 << 32);
    }

    #[test]
    fn covers_relation() {
        let p8: Prefix = "10.0.0.0/8".parse().unwrap();
        let p24: Prefix = "10.9.9.0/24".parse().unwrap();
        assert!(p8.covers(p24));
        assert!(!p24.covers(p8));
        assert!(p8.covers(p8));
        let other: Prefix = "11.0.0.0/24".parse().unwrap();
        assert!(!p8.covers(other));
    }

    #[test]
    fn slash30_hosts_skip_network_and_broadcast() {
        let p: Prefix = "198.51.100.4/30".parse().unwrap();
        let hosts: Vec<_> = p.hosts().map(|a| a.to_string()).collect();
        assert_eq!(hosts, ["198.51.100.5", "198.51.100.6"]);
    }

    #[test]
    fn slash31_hosts_are_both_addresses() {
        let p: Prefix = "198.51.100.4/31".parse().unwrap();
        let hosts: Vec<_> = p.hosts().map(|a| a.to_string()).collect();
        assert_eq!(hosts, ["198.51.100.4", "198.51.100.5"]);
    }

    #[test]
    fn slash24_address_iteration() {
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        let addrs: Vec<_> = p.addresses().collect();
        assert_eq!(addrs.len(), 256);
        assert_eq!(addrs[0].to_string(), "10.0.0.0");
        assert_eq!(addrs[255].to_string(), "10.0.0.255");
        assert_eq!(p.last().to_string(), "10.0.0.255");
    }

    #[test]
    fn slash32_single_host() {
        let p: Prefix = "8.8.8.8/32".parse().unwrap();
        assert_eq!(p.hosts().count(), 1);
        assert_eq!(p.num_addresses(), 1);
    }
}

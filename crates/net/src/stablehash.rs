//! Deterministic, seedable mixing — the workspace's source of *stable*
//! per-entity randomness.
//!
//! The simulator must be reproducible across runs and platforms: a probe's
//! jitter, a router's ECMP choice, or a /24's responsiveness may not depend
//! on `HashMap` iteration order or on how many random draws happened before.
//! Instead, each decision hashes the relevant identifiers with a seed.
//! SplitMix64 is small, fast, and statistically fine for this purpose.

/// One round of SplitMix64.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes a sequence of labelled values into one 64-bit digest.
///
/// ```
/// use cm_net::stablehash::mix;
/// let a = mix(42, &[1, 2, 3]);
/// let b = mix(42, &[1, 2, 3]);
/// let c = mix(42, &[1, 2, 4]);
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[inline]
pub fn mix(seed: u64, parts: &[u64]) -> u64 {
    let mut acc = splitmix64(seed ^ 0x517c_c1b7_2722_0a95);
    for &p in parts {
        acc = splitmix64(acc ^ p);
    }
    acc
}

/// A uniform `f64` in `[0, 1)` derived from a digest.
#[inline]
pub fn unit_f64(digest: u64) -> f64 {
    // 53 high bits -> [0,1) double.
    (digest >> 11) as f64 / (1u64 << 53) as f64
}

/// Bernoulli draw with probability `p`, keyed by `(seed, parts)`.
#[inline]
pub fn chance(seed: u64, parts: &[u64], p: f64) -> bool {
    unit_f64(mix(seed, parts)) < p
}

/// Picks an index in `0..n` keyed by `(seed, parts)`.
///
/// # Panics
/// Panics if `n == 0`.
#[inline]
pub fn pick(seed: u64, parts: &[u64], n: usize) -> usize {
    assert!(n > 0, "pick from empty range");
    (mix(seed, parts) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_nonzero() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn mix_depends_on_order() {
        assert_ne!(mix(7, &[1, 2]), mix(7, &[2, 1]));
    }

    #[test]
    fn mix_depends_on_seed() {
        assert_ne!(mix(1, &[5]), mix(2, &[5]));
    }

    #[test]
    fn unit_in_range() {
        for i in 0..1000u64 {
            let u = unit_f64(mix(9, &[i]));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        assert!(!chance(1, &[1], 0.0));
        assert!(chance(1, &[1], 1.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let hits = (0..10_000u64).filter(|&i| chance(3, &[i], 0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }

    #[test]
    fn pick_bounds() {
        for i in 0..100u64 {
            assert!(pick(4, &[i], 7) < 7);
        }
    }

    #[test]
    #[should_panic]
    fn pick_empty_panics() {
        pick(1, &[], 0);
    }
}

//! IPv4 address type backed by a `u32`.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address.
///
/// Stored as a big-endian `u32` so that ordering, masking and `+1`
/// neighbour computation (used by the VPI target-pool construction, §7.1 of
/// the paper) are single integer operations.
///
/// ```
/// use cm_net::Ipv4;
/// let a: Ipv4 = "203.0.113.7".parse().unwrap();
/// assert_eq!(a.octets(), [203, 0, 113, 7]);
/// assert_eq!(a.saturating_next().to_string(), "203.0.113.8");
/// assert_eq!(a.slash24_base().to_string(), "203.0.113.0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4 = Ipv4(0);

    /// Builds an address from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// The raw big-endian integer value.
    pub const fn to_u32(self) -> u32 {
        self.0
    }

    /// The next address, saturating at `255.255.255.255`.
    pub const fn saturating_next(self) -> Ipv4 {
        Ipv4(self.0.saturating_add(1))
    }

    /// The previous address, saturating at `0.0.0.0`.
    pub const fn saturating_prev(self) -> Ipv4 {
        Ipv4(self.0.saturating_sub(1))
    }

    /// The base (`.0`) address of the enclosing /24.
    pub const fn slash24_base(self) -> Ipv4 {
        Ipv4(self.0 & 0xffff_ff00)
    }

    /// The `.1` address of the enclosing /24 — the sweep target used by the
    /// paper's first probing round (§3).
    pub const fn slash24_probe_target(self) -> Ipv4 {
        Ipv4((self.0 & 0xffff_ff00) | 1)
    }

    /// The low byte within the /24.
    pub const fn host_byte(self) -> u8 {
        self.0 as u8
    }

    /// True for RFC1918 private space or RFC6598 shared space — the ranges
    /// the paper maps to `AS0` during annotation (§3).
    pub const fn is_private_or_shared(self) -> bool {
        let v = self.0;
        // 10.0.0.0/8
        (v >> 24) == 10
            // 172.16.0.0/12
            || (v >> 20) == 0xac1
            // 192.168.0.0/16
            || (v >> 16) == 0xc0a8
            // 100.64.0.0/10 (shared address space)
            || (v >> 22) == (0x6440_0000u32 >> 22)
    }

    /// True for multicast (224/4) or the broadcast-ish 240/4 block, which the
    /// paper excludes from the sweep target list (§3).
    pub const fn is_multicast_or_reserved(self) -> bool {
        (self.0 >> 28) >= 0xe
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ipv4({})", self)
    }
}

/// Error produced when parsing a dotted-quad string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(pub String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address: {:?}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for Ipv4 {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut v: u32 = 0;
        let mut n = 0;
        for p in parts.by_ref() {
            let b: u8 = p.parse().map_err(|_| AddrParseError(s.to_string()))?;
            v = (v << 8) | b as u32;
            n += 1;
            if n > 4 {
                return Err(AddrParseError(s.to_string()));
            }
        }
        if n != 4 {
            return Err(AddrParseError(s.to_string()));
        }
        Ok(Ipv4(v))
    }
}

impl From<u32> for Ipv4 {
    fn from(v: u32) -> Self {
        Ipv4(v)
    }
}

impl From<[u8; 4]> for Ipv4 {
    fn from(o: [u8; 4]) -> Self {
        Ipv4::new(o[0], o[1], o[2], o[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_display_parse() {
        for s in ["0.0.0.0", "10.1.2.3", "203.0.113.255", "255.255.255.255"] {
            let a: Ipv4 = s.parse().unwrap();
            assert_eq!(a.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"] {
            assert!(s.parse::<Ipv4>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn octet_order_is_big_endian() {
        let a = Ipv4::new(1, 2, 3, 4);
        assert_eq!(a.0, 0x0102_0304);
        assert_eq!(a.octets(), [1, 2, 3, 4]);
    }

    #[test]
    fn slash24_helpers() {
        let a: Ipv4 = "198.51.100.77".parse().unwrap();
        assert_eq!(a.slash24_base().to_string(), "198.51.100.0");
        assert_eq!(a.slash24_probe_target().to_string(), "198.51.100.1");
        assert_eq!(a.host_byte(), 77);
    }

    #[test]
    fn neighbours_saturate() {
        assert_eq!(Ipv4(u32::MAX).saturating_next(), Ipv4(u32::MAX));
        assert_eq!(Ipv4(0).saturating_prev(), Ipv4(0));
        assert_eq!(Ipv4(5).saturating_next(), Ipv4(6));
    }

    #[test]
    fn private_and_shared_ranges() {
        assert!("10.0.0.1".parse::<Ipv4>().unwrap().is_private_or_shared());
        assert!("172.16.0.1".parse::<Ipv4>().unwrap().is_private_or_shared());
        assert!("172.31.255.255"
            .parse::<Ipv4>()
            .unwrap()
            .is_private_or_shared());
        assert!(!"172.32.0.0".parse::<Ipv4>().unwrap().is_private_or_shared());
        assert!("192.168.4.4"
            .parse::<Ipv4>()
            .unwrap()
            .is_private_or_shared());
        assert!("100.64.0.1".parse::<Ipv4>().unwrap().is_private_or_shared());
        assert!("100.127.255.1"
            .parse::<Ipv4>()
            .unwrap()
            .is_private_or_shared());
        assert!(!"100.128.0.1"
            .parse::<Ipv4>()
            .unwrap()
            .is_private_or_shared());
        assert!(!"8.8.8.8".parse::<Ipv4>().unwrap().is_private_or_shared());
    }

    #[test]
    fn multicast_detection() {
        assert!("224.0.0.1"
            .parse::<Ipv4>()
            .unwrap()
            .is_multicast_or_reserved());
        assert!("240.0.0.1"
            .parse::<Ipv4>()
            .unwrap()
            .is_multicast_or_reserved());
        assert!(!"223.255.255.255"
            .parse::<Ipv4>()
            .unwrap()
            .is_multicast_or_reserved());
    }

    #[test]
    fn ordering_matches_numeric() {
        let a: Ipv4 = "1.0.0.0".parse().unwrap();
        let b: Ipv4 = "2.0.0.0".parse().unwrap();
        assert!(a < b);
    }
}

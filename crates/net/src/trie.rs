//! Binary longest-prefix-match trie.

use crate::addr::Ipv4;
use crate::prefix::Prefix;

/// A binary trie mapping [`Prefix`]es to values with longest-prefix-match
/// lookup, the core of IP→ASN annotation (§3 of the paper) and of the
/// dataplane's forwarding tables.
///
/// ```
/// use cm_net::{Prefix, PrefixTrie};
/// let mut t = PrefixTrie::new();
/// t.insert("10.0.0.0/8".parse().unwrap(), "coarse");
/// t.insert("10.1.0.0/16".parse().unwrap(), "fine");
/// let (p, v) = t.longest_match("10.1.2.3".parse().unwrap()).unwrap();
/// assert_eq!(*v, "fine");
/// assert_eq!(p.to_string(), "10.1.0.0/16");
/// assert_eq!(*t.longest_match("10.9.9.9".parse().unwrap()).unwrap().1, "coarse");
/// assert!(t.longest_match("11.0.0.0".parse().unwrap()).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

#[derive(Clone, Debug)]
struct Node<T> {
    children: [Option<u32>; 2],
    value: Option<(Prefix, T)>,
}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Node {
            children: [None, None],
            value: None,
        }
    }
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::default()],
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bit(addr: Ipv4, depth: u8) -> usize {
        ((addr.0 >> (31 - depth as u32)) & 1) as usize
    }

    /// Inserts `prefix` with `value`, returning the previous value if the
    /// exact prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut idx = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(prefix.base(), depth);
            let next = match self.nodes[idx].children[b] {
                Some(n) => n as usize,
                None => {
                    self.nodes.push(Node::default());
                    let n = self.nodes.len() - 1;
                    self.nodes[idx].children[b] = Some(n as u32);
                    n
                }
            };
            idx = next;
        }
        let old = self.nodes[idx].value.replace((prefix, value));
        if old.is_none() {
            self.len += 1;
        }
        old.map(|(_, v)| v)
    }

    /// Returns the value stored at exactly `prefix`, if any.
    pub fn get_exact(&self, prefix: Prefix) -> Option<&T> {
        let mut idx = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(prefix.base(), depth);
            idx = self.nodes[idx].children[b]? as usize;
        }
        self.nodes[idx].value.as_ref().map(|(_, v)| v)
    }

    /// Longest-prefix-match lookup: the most specific stored prefix that
    /// contains `addr`, together with its value.
    pub fn longest_match(&self, addr: Ipv4) -> Option<(Prefix, &T)> {
        let mut idx = 0usize;
        let mut best: Option<(Prefix, &T)> = None;
        for depth in 0..=32u8 {
            if let Some((p, v)) = &self.nodes[idx].value {
                best = Some((*p, v));
            }
            if depth == 32 {
                break;
            }
            match self.nodes[idx].children[Self::bit(addr, depth)] {
                Some(n) => idx = n as usize,
                None => break,
            }
        }
        best
    }

    /// Convenience: longest-match value only.
    pub fn lookup(&self, addr: Ipv4) -> Option<&T> {
        self.longest_match(addr).map(|(_, v)| v)
    }

    /// Iterates all stored `(prefix, value)` pairs in trie (prefix) order.
    ///
    /// The walk is lazy: only the DFS stack (bounded by the trie depth,
    /// ≤ 33 nodes) is held between calls, so iterating a large trie never
    /// materializes a second copy of it.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            trie: self,
            stack: vec![0usize],
        }
    }
}

/// Lazy depth-first iterator over a [`PrefixTrie`]; see [`PrefixTrie::iter`].
#[derive(Clone, Debug)]
pub struct Iter<'a, T> {
    trie: &'a PrefixTrie<T>,
    stack: Vec<usize>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (Prefix, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        // Left (0) child first yields prefixes in ascending base-address
        // order, shorter prefix first at equal base — the same order the
        // old eager walk produced.
        while let Some(idx) = self.stack.pop() {
            let node = &self.trie.nodes[idx];
            // push right first so left pops first
            if let Some(r) = node.children[1] {
                self.stack.push(r as usize);
            }
            if let Some(l) = node.children[0] {
                self.stack.push(l as usize);
            }
            if let Some((p, v)) = &node.value {
                return Some((*p, v));
            }
        }
        None
    }
}

impl<T> FromIterator<(Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4 {
        s.parse().unwrap()
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let t: PrefixTrie<u32> = PrefixTrie::new();
        assert!(t.longest_match(a("1.2.3.4")).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn default_route_fallback() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0u32);
        t.insert(p("10.0.0.0/8"), 10);
        assert_eq!(*t.lookup(a("10.1.1.1")).unwrap(), 10);
        assert_eq!(*t.lookup(a("99.1.1.1")).unwrap(), 0);
    }

    #[test]
    fn most_specific_wins() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8u8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);
        t.insert(p("10.1.2.128/25"), 25);
        assert_eq!(*t.lookup(a("10.1.2.129")).unwrap(), 25);
        assert_eq!(*t.lookup(a("10.1.2.1")).unwrap(), 24);
        assert_eq!(*t.lookup(a("10.1.9.1")).unwrap(), 16);
        assert_eq!(*t.lookup(a("10.200.0.1")).unwrap(), 8);
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1u8), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn exact_lookup_distinguishes_lengths() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8u8);
        t.insert(p("10.0.0.0/16"), 16);
        assert_eq!(*t.get_exact(p("10.0.0.0/8")).unwrap(), 8);
        assert_eq!(*t.get_exact(p("10.0.0.0/16")).unwrap(), 16);
        assert!(t.get_exact(p("10.0.0.0/12")).is_none());
    }

    #[test]
    fn host_route_matches_only_itself() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), ());
        assert!(t.lookup(a("1.2.3.4")).is_some());
        assert!(t.lookup(a("1.2.3.5")).is_none());
    }

    #[test]
    fn iter_yields_all_in_order() {
        let mut t = PrefixTrie::new();
        for s in ["10.0.0.0/8", "9.0.0.0/8", "10.1.0.0/16", "11.0.0.0/8"] {
            t.insert(p(s), s.to_string());
        }
        let got: Vec<String> = t.iter().map(|(pre, _)| pre.to_string()).collect();
        assert_eq!(
            got,
            ["9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16", "11.0.0.0/8"]
        );
    }

    #[test]
    fn iter_is_lazy_and_resumable() {
        let mut t = PrefixTrie::new();
        for s in ["10.0.0.0/8", "9.0.0.0/8", "10.1.0.0/16"] {
            t.insert(p(s), ());
        }
        let mut it = t.iter();
        assert_eq!(it.next().unwrap().0.to_string(), "9.0.0.0/8");
        // The remaining items arrive on demand, in order, from the same
        // iterator state.
        let rest: Vec<String> = it.map(|(pre, _)| pre.to_string()).collect();
        assert_eq!(rest, ["10.0.0.0/8", "10.1.0.0/16"]);
        // A partially consumed iterator can simply be dropped.
        let mut early = t.iter();
        let _ = early.next();
        drop(early);
    }

    #[test]
    fn from_iterator() {
        let t: PrefixTrie<u8> = vec![(p("10.0.0.0/8"), 1), (p("20.0.0.0/8"), 2)]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 2);
    }
}

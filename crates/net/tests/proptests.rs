//! Property-based tests for the addressing primitives.

use cm_net::{Ipv4, Prefix, PrefixTrie};
use proptest::prelude::*;

proptest! {
    /// Display/parse round-trips for every address.
    #[test]
    fn ipv4_display_parse_roundtrip(v in any::<u32>()) {
        let a = Ipv4(v);
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Ipv4>().unwrap(), a);
    }

    /// The /24 helpers agree with masking arithmetic.
    #[test]
    fn slash24_helpers_consistent(v in any::<u32>()) {
        let a = Ipv4(v);
        prop_assert_eq!(a.slash24_base().to_u32(), v & 0xffff_ff00);
        prop_assert_eq!(a.slash24_probe_target().host_byte(), 1);
        prop_assert!(Prefix::slash24_of(a).contains(a));
    }

    /// Canonicalization makes base/contains consistent.
    #[test]
    fn prefix_contains_its_base_and_last(v in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(Ipv4(v), len);
        prop_assert!(p.contains(p.base()));
        prop_assert!(p.contains(p.last()));
        // One past the last address is outside (unless the prefix is /0).
        if !p.is_default() && p.last().to_u32() != u32::MAX {
            prop_assert!(!p.contains(p.last().saturating_next()));
        }
    }

    /// `covers` is a partial order consistent with containment.
    #[test]
    fn covers_is_consistent(a in any::<u32>(), la in 0u8..=32, b in any::<u32>(), lb in 0u8..=32) {
        let pa = Prefix::new(Ipv4(a), la);
        let pb = Prefix::new(Ipv4(b), lb);
        if pa.covers(pb) {
            prop_assert!(pa.contains(pb.base()));
            prop_assert!(pa.contains(pb.last()));
            prop_assert!(pa.len() <= pb.len());
        }
        // Reflexivity.
        prop_assert!(pa.covers(pa));
    }

    /// The trie agrees with a naive longest-prefix-match scan.
    #[test]
    fn trie_matches_naive_lpm(
        entries in proptest::collection::vec((any::<u32>(), 8u8..=32), 1..40),
        probes in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let mut trie = PrefixTrie::new();
        let mut list: Vec<(Prefix, usize)> = Vec::new();
        for (i, (base, len)) in entries.iter().enumerate() {
            let p = Prefix::new(Ipv4(*base), *len);
            trie.insert(p, i);
            list.retain(|(q, _)| *q != p);
            list.push((p, i));
        }
        for v in probes {
            let addr = Ipv4(v);
            let naive = list
                .iter()
                .filter(|(p, _)| p.contains(addr))
                .max_by_key(|(p, _)| p.len())
                .map(|(p, i)| (*p, *i));
            let got = trie.longest_match(addr).map(|(p, i)| (p, *i));
            prop_assert_eq!(got, naive);
        }
    }

    /// Host iteration yields exactly the contained, non-edge addresses.
    #[test]
    fn hosts_subset_of_prefix(v in any::<u32>(), len in 22u8..=32) {
        let p = Prefix::new(Ipv4(v), len);
        let hosts: Vec<Ipv4> = p.hosts().collect();
        for h in &hosts {
            prop_assert!(p.contains(*h));
        }
        let expected = if len >= 31 {
            p.num_addresses()
        } else {
            p.num_addresses() - 2
        };
        prop_assert_eq!(hosts.len() as u64, expected);
    }
}

proptest! {
    /// Stable hashing is a pure function and `pick` respects bounds.
    #[test]
    fn stablehash_properties(seed in any::<u64>(), parts in proptest::collection::vec(any::<u64>(), 0..8), n in 1usize..1000) {
        use cm_net::stablehash::{mix, pick, unit_f64};
        prop_assert_eq!(mix(seed, &parts), mix(seed, &parts));
        let u = unit_f64(mix(seed, &parts));
        prop_assert!((0.0..1.0).contains(&u));
        prop_assert!(pick(seed, &parts, n) < n);
    }
}

//! # cm-dns — reverse DNS synthesis and DRoP-style parsing
//!
//! Operators embed location and circuit hints in router hostnames
//! (`ae-4.amazon.atlnga05.us.bb.gin.ntt.net`), and the paper leans on them
//! twice:
//!
//! * §6.1 uses DNS-embedded locations (airport codes, city names) as pinning
//!   **anchors**, sanity-checked against RTT feasibility;
//! * §7.3 uses `dxvif`/`dxcon`/VLAN keywords as evidence that a private
//!   interconnect is in fact virtual.
//!
//! [`DnsDb::synthesize`] generates hostnames for a configurable share of
//! client interfaces, in several operator conventions, including a small
//! fraction of *stale* names pointing at the wrong metro (these are what the
//! RTT-feasibility check exists to catch). [`parse_location`] and
//! [`parse_vpi_hint`] are the DRoP-style extraction side used by inference.

#![deny(missing_docs)]

use cm_geo::{MetroCatalog, MetroId};
use cm_net::stablehash;
use cm_net::Ipv4;
use cm_topology::{IcKind, IfaceKind, Internet, RouterRole};
use std::collections::HashMap;

/// The synthesized reverse-DNS database (what a PTR sweep would return).
#[derive(Clone, Debug, Default)]
pub struct DnsDb {
    names: HashMap<Ipv4, String>,
}

/// Hostname conventions used by the synthesizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Style {
    /// `ae-4.cloud.fra03.de.bb.<as>.net` — airport code + digits.
    BackboneAirport,
    /// `<as>-frankfurt-edge2.<as>.com` — full city token.
    EdgeCity,
    /// `core3.<as>.net` — no location at all.
    Bare,
}

/// Share of generated names that point at the *wrong* metro (stale PTR
/// records); the RTT-feasibility check of §6.1 must filter these.
pub const STALE_FRACTION: f64 = 0.03;

impl DnsDb {
    /// Generates hostnames for client-side interfaces of the ground truth.
    ///
    /// Coverage follows `inet.config.cbi_dns_coverage`; ABIs never get names
    /// (the paper observed none on Amazon's side, §6.1 footnote 9). VPI
    /// ports frequently carry `dxvif`/VLAN markers.
    pub fn synthesize(inet: &Internet, seed: u64) -> Self {
        let mut names = HashMap::new();
        for iface in &inet.ifaces {
            let Some(addr) = iface.addr else { continue };
            let router = inet.router(iface.router);
            if !matches!(
                router.role,
                RouterRole::ClientBorder | RouterRole::ClientInternal
            ) {
                continue;
            }
            if !stablehash::chance(
                seed,
                &[0xD45, addr.to_u32() as u64],
                inet.config.cbi_dns_coverage,
            ) {
                continue;
            }
            let metro = Self::name_metro(inet, seed, addr, router.metro);
            let as_name = sanitized(&inet.as_node(router.owner).name);
            let style = Self::pick_style(seed, router.owner.0 as u64);
            let vpi_port = Self::is_vpi_port(inet, iface.id);
            let m = inet.metros.get(metro);
            let h = stablehash::mix(seed, &[0x6A3E, addr.to_u32() as u64]);
            let name = if vpi_port && stablehash::chance(seed, &[0xDF, addr.to_u32() as u64], 0.55)
            {
                // Direct-connect virtual-interface convention.
                let vlan = 100 + (h % 3900);
                match h % 3 {
                    // cm-lint: hot-cost-accepted(hostnames are synthesized once per run; every interface needs its own name string)
                    0 => format!(
                        "dxvif-{:06x}.vl{}.{}{:02}.{}.net",
                        h & 0xffffff,
                        vlan,
                        m.airport,
                        h % 20,
                        as_name
                    ),
                    1 => format!("aws-dx.vl{}.{}x{}.{}.net", vlan, m.airport, h % 9, as_name), // cm-lint: hot-cost-accepted(hostnames are synthesized once per run; every interface needs its own name string)
                    // cm-lint: hot-cost-accepted(hostnames are synthesized once per run; every interface needs its own name string)
                    _ => format!(
                        "dxcon-{:06x}.{}{:02}.{}.net",
                        h & 0xffffff,
                        m.airport,
                        h % 20,
                        as_name
                    ),
                }
            } else {
                match style {
                    // cm-lint: hot-cost-accepted(hostnames are synthesized once per run; every interface needs its own name string)
                    Style::BackboneAirport => format!(
                        "ae-{}.cloud.{}{:02}.{}.bb.{}.net",
                        h % 16,
                        m.airport,
                        h % 24,
                        m.country.to_ascii_lowercase(),
                        as_name
                    ),
                    Style::EdgeCity => {
                        // cm-lint: hot-cost-accepted(hostnames are synthesized once per run; every interface needs its own name string)
                        format!("{}-{}-edge{}.{}.com", as_name, m.token, h % 8, as_name)
                    }
                    Style::Bare => format!("core{}.{}.net", h % 12, as_name), // cm-lint: hot-cost-accepted(hostnames are synthesized once per run; every interface needs its own name string)
                }
            };
            names.insert(addr, name);
        }
        DnsDb { names }
    }

    fn pick_style(seed: u64, as_key: u64) -> Style {
        match stablehash::mix(seed, &[0x57E1, as_key]) % 10 {
            0..=4 => Style::BackboneAirport,
            5..=7 => Style::EdgeCity,
            _ => Style::Bare,
        }
    }

    /// The metro the name claims — usually the truth, occasionally stale.
    fn name_metro(inet: &Internet, seed: u64, addr: Ipv4, truth: MetroId) -> MetroId {
        if stablehash::chance(seed, &[0x57A1E, addr.to_u32() as u64], STALE_FRACTION) {
            let n = inet.metros.len();
            MetroId(stablehash::pick(seed, &[0x57A1F, addr.to_u32() as u64], n) as u16)
        } else {
            truth
        }
    }

    fn is_vpi_port(inet: &Internet, iface: cm_topology::IfaceId) -> bool {
        match inet.iface(iface).kind {
            IfaceKind::Interconnect(ic) => matches!(inet.interconnect(ic).kind, IcKind::Vpi { .. }),
            _ => false,
        }
    }

    /// PTR lookup.
    pub fn lookup(&self, addr: Ipv4) -> Option<&str> {
        self.names.get(&addr).map(|s| s.as_str())
    }

    /// Number of named addresses.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no names were generated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates all (address, hostname) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4, &str)> {
        // cm-lint: nondet-quarantined(unordered pair stream by design; no digest-path code calls it and every test sorts what it collects)
        self.names.iter().map(|(&a, n)| (a, n.as_str()))
    }
}

fn sanitized(as_name: &str) -> String {
    as_name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// DRoP-style location extraction: scans hostname labels for full city
/// tokens first (unambiguous), then 3-letter airport codes optionally
/// followed by digits.
///
/// ```
/// use cm_geo::MetroCatalog;
/// let cat = MetroCatalog::world();
/// let m = cm_dns::parse_location("ae-4.cloud.fra03.de.bb.tr-x.net", &cat).unwrap();
/// assert_eq!(cat.get(m).name, "Frankfurt");
/// let m = cm_dns::parse_location("acme-atlanta-edge2.acme.com", &cat).unwrap();
/// assert_eq!(cat.get(m).name, "Atlanta");
/// assert!(cm_dns::parse_location("core7.acme.net", &cat).is_none());
/// ```
pub fn parse_location(name: &str, catalog: &MetroCatalog) -> Option<MetroId> {
    let labels: Vec<&str> = name
        .split(['.', '-', '_'])
        .filter(|s| !s.is_empty())
        .collect();
    // Full city tokens win over airport codes.
    for l in &labels {
        if l.len() >= 4 {
            if let Some(m) = catalog.by_token(&l.to_ascii_lowercase()) {
                return Some(m.id);
            }
        }
    }
    for l in &labels {
        let lower = l.to_ascii_lowercase();
        // "fra03" → "fra"; plain "fra" also matches.
        let alpha: String = lower
            .chars()
            .take_while(|c| c.is_ascii_alphabetic())
            .collect();
        if alpha.len() == 3 && lower.len() <= 5 {
            if let Some(m) = catalog.by_airport(&alpha) {
                return Some(m.id);
            }
        }
    }
    None
}

/// Does the hostname carry direct-connect / VLAN markers suggesting a
/// virtual interconnect (§7.3's `dxvif` evidence)?
pub fn parse_vpi_hint(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("dxvif")
        || lower.contains("dxcon")
        || lower.contains("awsdx")
        || lower.contains("aws-dx")
        || lower.split(['.', '-']).any(|l| {
            l.len() > 2 && l.starts_with("vl") && l[2..].chars().all(|c| c.is_ascii_digit())
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_topology::TopologyConfig;

    fn world() -> Internet {
        Internet::generate(TopologyConfig::tiny(), 13)
    }

    #[test]
    fn coverage_is_partial_and_deterministic() {
        let inet = world();
        let a = DnsDb::synthesize(&inet, 99);
        let b = DnsDb::synthesize(&inet, 99);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        // Not everything is named.
        let client_ifaces = inet
            .ifaces
            .iter()
            .filter(|f| {
                f.addr.is_some()
                    && matches!(
                        inet.router(f.router).role,
                        RouterRole::ClientBorder | RouterRole::ClientInternal
                    )
            })
            .count();
        assert!(a.len() < client_ifaces);
    }

    #[test]
    fn abis_never_have_names() {
        let inet = world();
        let db = DnsDb::synthesize(&inet, 99);
        for r in &inet.routers {
            if r.role == RouterRole::CloudBorder {
                for &f in &r.ifaces {
                    if let Some(addr) = inet.iface(f).addr {
                        assert!(db.lookup(addr).is_none(), "{addr} has a name");
                    }
                }
            }
        }
    }

    #[test]
    fn most_names_parse_to_true_metro() {
        let inet = world();
        let db = DnsDb::synthesize(&inet, 99);
        let mut parsed = 0;
        let mut correct = 0;
        for (addr, name) in db.iter() {
            let Some(m) = parse_location(name, &inet.metros) else {
                continue;
            };
            parsed += 1;
            let fid = inet.iface_by_addr[&addr];
            if inet.iface_metro(fid) == m {
                correct += 1;
            }
        }
        assert!(parsed > 10, "too few parseable names ({parsed})");
        let acc = correct as f64 / parsed as f64;
        assert!(acc > 0.9, "location accuracy {acc} too low");
    }

    #[test]
    fn vpi_ports_carry_dx_hints() {
        let inet = world();
        let db = DnsDb::synthesize(&inet, 99);
        let mut vpi_hints = 0;
        let mut non_vpi_hints = 0;
        for (addr, name) in db.iter() {
            let fid = inet.iface_by_addr[&addr];
            let is_vpi = matches!(
                inet.iface(fid).kind,
                IfaceKind::Interconnect(ic) if inet.interconnect(ic).kind.is_vpi()
            );
            if parse_vpi_hint(name) {
                if is_vpi {
                    vpi_hints += 1;
                } else {
                    non_vpi_hints += 1;
                }
            }
        }
        assert!(vpi_hints > 0, "no dx hints on VPI ports");
        assert_eq!(non_vpi_hints, 0, "dx hints must only appear on VPI ports");
    }

    #[test]
    fn parser_handles_edge_cases() {
        let cat = MetroCatalog::world();
        assert!(parse_location("", &cat).is_none());
        assert!(parse_location("x.y.z", &cat).is_none());
        // Airport code with trailing digits.
        assert!(parse_location("po1.lhr12.isp.net", &cat).is_some());
        // City token anywhere.
        assert_eq!(
            parse_location("edge.singapore.isp.net", &cat).map(|m| cat.get(m).name),
            Some("Singapore")
        );
    }

    #[test]
    fn vpi_hint_parser() {
        assert!(parse_vpi_hint("dxvif-00ab12.vl300.fra03.x.net"));
        assert!(parse_vpi_hint("aws-dx.vl200.iadx3.y.net"));
        assert!(parse_vpi_hint("po1.vl1234.z.net"));
        assert!(!parse_vpi_hint("ae-4.cloud.fra03.de.bb.x.net"));
        assert!(!parse_vpi_hint("vlx.pop.net"));
    }
}

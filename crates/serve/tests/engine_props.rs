//! Property tests: the engine's answers against brute-force oracles, and
//! the snapshot codec against arbitrary record sets.

use cm_net::{Asn, Ipv4, Prefix};
use cm_serve::{AtlasSnapshot, Engine, IfaceRecord};
use proptest::prelude::*;

/// Builds a snapshot from raw tuples, deduplicating interface addresses
/// (the writer's canonical form keeps one record per address).
fn snapshot_from(
    ifaces: &[(u32, bool, u32, u8)],
    prefixes: &[(u32, u8, u32)],
    segments: &[(u32, u32)],
) -> AtlasSnapshot {
    let mut interfaces: Vec<IfaceRecord> = Vec::new();
    for &(addr, is_cbi, owner, groups) in ifaces {
        if interfaces.iter().any(|r| r.addr == Ipv4(addr)) {
            continue;
        }
        interfaces.push(IfaceRecord {
            addr: Ipv4(addr),
            is_cbi,
            owner: Asn(owner),
            metro_pin: (addr % 3 == 0).then_some(((addr >> 8) as u16, (addr % 6) as u8)),
            region_pin: (addr % 5 == 0).then_some(addr >> 16),
            groups: groups & 0b11_1111,
            vpi: is_cbi && addr % 7 == 0,
        });
    }
    interfaces.sort_unstable_by_key(|r| r.addr);
    let mut seen = std::collections::BTreeSet::new();
    let prefixes = prefixes
        .iter()
        .map(|&(base, len, asn)| (Prefix::new(Ipv4(base), len.min(32)), Asn(asn)))
        .filter(|&(p, _)| seen.insert(p))
        .collect();
    AtlasSnapshot {
        summary_version: 2,
        golden_digest: 7,
        interfaces,
        prefixes,
        segments: segments.iter().map(|&(a, b)| (Ipv4(a), Ipv4(b))).collect(),
    }
}

proptest! {
    /// Arbitrary snapshots survive the byte round trip unchanged.
    #[test]
    fn codec_round_trips_arbitrary_snapshots(
        ifaces in proptest::collection::vec(
            (any::<u32>(), any::<bool>(), any::<u32>(), any::<u8>()), 0..40),
        prefixes in proptest::collection::vec((any::<u32>(), 0u8..=32, any::<u32>()), 0..40),
        segments in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..40),
    ) {
        let snap = snapshot_from(&ifaces, &prefixes, &segments);
        let bytes = snap.encode();
        prop_assert_eq!(AtlasSnapshot::decode(&bytes).unwrap(), snap.clone());
        prop_assert_eq!(bytes, snap.encode());
    }

    /// Engine longest-prefix answers match a linear scan over the
    /// snapshot's prefix table.
    #[test]
    fn lpm_matches_linear_scan_oracle(
        prefixes in proptest::collection::vec((any::<u32>(), 4u8..=32, any::<u32>()), 1..40),
        probes in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let snap = snapshot_from(&[], &prefixes, &[]);
        let engine = Engine::build(&snap, 1);
        for v in probes {
            let addr = Ipv4(v);
            let oracle = snap
                .prefixes
                .iter()
                .filter(|(p, _)| p.contains(addr))
                .max_by_key(|(p, _)| p.len())
                .copied();
            prop_assert_eq!(engine.longest_prefix(addr), oracle);
        }
    }

    /// Engine point lookups and neighborhoods match naive scans over the
    /// snapshot's tables.
    #[test]
    fn point_and_neighbors_match_naive_scans(
        ifaces in proptest::collection::vec(
            (0u32..500, any::<bool>(), any::<u32>(), any::<u8>()), 1..40),
        segments in proptest::collection::vec((0u32..500, 0u32..500), 0..60),
        probes in proptest::collection::vec(0u32..500, 1..40),
    ) {
        let snap = snapshot_from(&ifaces, &[], &segments);
        let engine = Engine::build(&snap, 1);
        for v in probes {
            let addr = Ipv4(v);
            let oracle = snap.interfaces.iter().find(|r| r.addr == addr);
            prop_assert_eq!(engine.point(addr), oracle);

            let mut expected: Vec<Ipv4> = Vec::new();
            if oracle.is_some() {
                for &(a, b) in &snap.segments {
                    if a == addr {
                        expected.push(b);
                    }
                    if b == addr {
                        expected.push(a);
                    }
                }
                expected.sort_unstable();
                expected.dedup();
            }
            prop_assert_eq!(engine.neighbors(addr).to_vec(), expected);
        }
    }
}

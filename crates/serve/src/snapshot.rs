//! The versioned, byte-deterministic atlas snapshot encoding.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            8 bytes  b"CMSNAP01"
//! format_version   u32      FORMAT_VERSION of the writer
//! summary_version  u32      cm-bench AtlasSummary schema version
//! golden_digest    u64      AtlasSummary::digest() of the source run
//! payload_len      u64      byte length of the payload that follows
//! file_digest      u64      stablehash chain over header + payload
//! payload          …        interface / prefix / segment tables
//! ```
//!
//! The payload is three length-prefixed tables, each sorted by the
//! writer, so encoding the same atlas twice yields identical bytes. The
//! `file_digest` covers every byte of the file except its own eight, and
//! the loader re-derives it before parsing any table — a flipped bit
//! anywhere in the file surfaces as a typed [`SnapshotError`], never as
//! a panic or a silently wrong record.

use cm_net::{stablehash, Asn, Ipv4, Prefix};
use std::fmt;

/// Version of the snapshot *encoding*. Bump on any layout change so old
/// readers reject new files loudly instead of misparsing them.
pub const FORMAT_VERSION: u32 = 1;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"CMSNAP01";

/// Why a snapshot could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedFormat(u32),
    /// The buffer ended before the declared content did.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Bytes remain after the declared payload — the file was appended
    /// to or the header length field was tampered with.
    TrailingBytes(usize),
    /// The recomputed payload digest does not match the header's.
    DigestMismatch {
        /// Digest stored in the header.
        stored: u64,
        /// Digest recomputed from the payload bytes.
        computed: u64,
    },
    /// A record field held an impossible value (e.g. a prefix length
    /// above 32).
    Malformed(&'static str),
    /// The snapshot file could not be read from disk.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an atlas snapshot (bad magic)"),
            SnapshotError::UnsupportedFormat(v) => {
                write!(
                    f,
                    "unsupported snapshot format {v} (reader: {FORMAT_VERSION})"
                )
            }
            SnapshotError::Truncated { need, have } => {
                write!(f, "truncated snapshot: need {need} bytes, have {have}")
            }
            SnapshotError::TrailingBytes(n) => {
                write!(f, "{n} trailing byte(s) after the declared payload")
            }
            SnapshotError::DigestMismatch { stored, computed } => write!(
                f,
                "payload digest mismatch: header {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::Malformed(what) => write!(f, "malformed record: {what}"),
            SnapshotError::Io(err) => write!(f, "cannot read snapshot: {err}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The serving record of one border interface, as stored in a snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IfaceRecord {
    /// The interface address.
    pub addr: Ipv4,
    /// `true` for a CBI (the peer's side), `false` for an ABI.
    pub is_cbi: bool,
    /// Owning ASN ([`Asn::RESERVED`] when unknown).
    pub owner: Asn,
    /// Metro-level pin, if any: `(metro id, pin-source index)`.
    pub metro_pin: Option<(u16, u8)>,
    /// Regional fallback pin, if any (region id).
    pub region_pin: Option<u32>,
    /// Peering-group bitmask (bit *i* ⇔ group *i* in Table 5 order).
    pub groups: u8,
    /// Whether the interface was classified as a VPI port.
    pub vpi: bool,
}

/// A decoded (or to-be-encoded) atlas snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AtlasSnapshot {
    /// `AtlasSummary` schema version of the source run.
    pub summary_version: u32,
    /// `AtlasSummary::digest()` of the source run — pins the snapshot to
    /// one specific golden atlas.
    pub golden_digest: u64,
    /// All border interfaces, ascending by address.
    pub interfaces: Vec<IfaceRecord>,
    /// Announced prefixes with origin ASNs, in trie (prefix) order.
    pub prefixes: Vec<(Prefix, Asn)>,
    /// ICG edges as `(abi, cbi)` pairs, ascending.
    pub segments: Vec<(Ipv4, Ipv4)>,
}

/// Bytes before the digest field: magic + format + summary + golden +
/// payload_len.
const DIGEST_OFFSET: usize = 8 + 4 + 4 + 8 + 8;
const HEADER_LEN: usize = DIGEST_OFFSET + 8;
/// Flag bits of an encoded interface record.
const F_CBI: u8 = 1 << 0;
const F_VPI: u8 = 1 << 1;
const F_METRO: u8 = 1 << 2;
const F_REGION: u8 = 1 << 3;
const IFACE_BYTES: usize = 4 + 4 + 1 + 1 + 1 + 2 + 4;
const PREFIX_BYTES: usize = 4 + 1 + 4;
const SEGMENT_BYTES: usize = 4 + 4;

/// Stable digest over an ordered sequence of byte strings: the same
/// splitmix chain the metrics digest uses, folded 8 bytes at a time,
/// with each part's length mixed in so part boundaries matter.
pub fn file_digest(parts: &[&[u8]]) -> u64 {
    let mut h = 0x0C11_05EA_u64;
    for bytes in parts {
        h = stablehash::mix(h, &[bytes.len() as u64]);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            h = stablehash::mix(h, &[u64::from_le_bytes(w)]);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            // cm-lint: panic-safe(chunks_exact(8) leaves a remainder of at most 7 bytes and w is 8)
            w[..rem.len()].copy_from_slice(rem);
            h = stablehash::mix(h, &[u64::from_le_bytes(w), rem.len() as u64]);
        }
    }
    h
}

impl AtlasSnapshot {
    /// Encodes the snapshot into its canonical byte form.
    ///
    /// Equal snapshots encode to identical bytes: the writer emits the
    /// tables exactly as stored (builders keep them sorted) and the
    /// format has no padding, timestamps or pointers.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(
            12 + self.interfaces.len() * IFACE_BYTES
                + self.prefixes.len() * PREFIX_BYTES
                + self.segments.len() * SEGMENT_BYTES,
        );
        payload.extend_from_slice(&(self.interfaces.len() as u32).to_le_bytes());
        for r in &self.interfaces {
            let mut flags = 0u8;
            if r.is_cbi {
                flags |= F_CBI;
            }
            if r.vpi {
                flags |= F_VPI;
            }
            if r.metro_pin.is_some() {
                flags |= F_METRO;
            }
            if r.region_pin.is_some() {
                flags |= F_REGION;
            }
            let (metro, source) = r.metro_pin.unwrap_or((0, 0));
            payload.extend_from_slice(&r.addr.to_u32().to_le_bytes());
            payload.extend_from_slice(&r.owner.0.to_le_bytes());
            payload.push(flags);
            payload.push(r.groups);
            payload.push(source);
            payload.extend_from_slice(&metro.to_le_bytes());
            payload.extend_from_slice(&r.region_pin.unwrap_or(0).to_le_bytes());
        }
        payload.extend_from_slice(&(self.prefixes.len() as u32).to_le_bytes());
        for &(p, asn) in &self.prefixes {
            payload.extend_from_slice(&p.base().to_u32().to_le_bytes());
            payload.push(p.len());
            payload.extend_from_slice(&asn.0.to_le_bytes());
        }
        payload.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for &(abi, cbi) in &self.segments {
            payload.extend_from_slice(&abi.to_u32().to_le_bytes());
            payload.extend_from_slice(&cbi.to_u32().to_le_bytes());
        }

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.summary_version.to_le_bytes());
        out.extend_from_slice(&self.golden_digest.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let digest = file_digest(&[&out[..DIGEST_OFFSET], &payload]);
        out.extend_from_slice(&digest.to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes and validates a snapshot.
    ///
    /// Every read is bounds-checked and the payload digest is re-derived
    /// before any table is parsed, so corruption anywhere in the buffer
    /// yields a typed error rather than a panic or a wrong record.
    pub fn decode(bytes: &[u8]) -> Result<AtlasSnapshot, SnapshotError> {
        let Some((header, payload)) = bytes.split_at_checked(HEADER_LEN) else {
            return Err(SnapshotError::Truncated {
                need: HEADER_LEN,
                have: bytes.len(),
            });
        };
        if bytes.get(..8) != Some(MAGIC.as_slice()) {
            return Err(SnapshotError::BadMagic);
        }
        let mut c = Cursor {
            bytes: header,
            pos: 8,
        };
        let format = c.u32()?;
        if format != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedFormat(format));
        }
        let summary_version = c.u32()?;
        let golden_digest = c.u64()?;
        let payload_len = c.u64()? as usize;
        let stored = c.u64()?;
        let have = payload.len();
        if have < payload_len {
            return Err(SnapshotError::Truncated {
                need: HEADER_LEN + payload_len,
                have: bytes.len(),
            });
        }
        if have > payload_len {
            return Err(SnapshotError::TrailingBytes(have - payload_len));
        }
        // cm-lint: panic-safe(split_at_checked pinned header to exactly HEADER_LEN bytes and DIGEST_OFFSET < HEADER_LEN)
        let computed = file_digest(&[&header[..DIGEST_OFFSET], payload]);
        if computed != stored {
            return Err(SnapshotError::DigestMismatch { stored, computed });
        }

        let mut c = Cursor {
            bytes: payload,
            pos: 0,
        };
        let n_ifaces = c.len_prefix(IFACE_BYTES)?;
        let mut interfaces = Vec::with_capacity(n_ifaces);
        for _ in 0..n_ifaces {
            let addr = Ipv4(c.u32()?);
            let owner = Asn(c.u32()?);
            let flags = c.u8()?;
            let groups = c.u8()?;
            let source = c.u8()?;
            let metro = c.u16()?;
            let region = c.u32()?;
            interfaces.push(IfaceRecord {
                addr,
                is_cbi: flags & F_CBI != 0,
                owner,
                metro_pin: (flags & F_METRO != 0).then_some((metro, source)),
                region_pin: (flags & F_REGION != 0).then_some(region),
                groups,
                vpi: flags & F_VPI != 0,
            });
        }
        let n_prefixes = c.len_prefix(PREFIX_BYTES)?;
        let mut prefixes = Vec::with_capacity(n_prefixes);
        for _ in 0..n_prefixes {
            let base = Ipv4(c.u32()?);
            let len = c.u8()?;
            if len > 32 {
                return Err(SnapshotError::Malformed("prefix length above 32"));
            }
            let asn = Asn(c.u32()?);
            prefixes.push((Prefix::new(base, len), asn));
        }
        let n_segments = c.len_prefix(SEGMENT_BYTES)?;
        let mut segments = Vec::with_capacity(n_segments);
        for _ in 0..n_segments {
            let abi = Ipv4(c.u32()?);
            let cbi = Ipv4(c.u32()?);
            segments.push((abi, cbi));
        }
        if c.pos != payload.len() {
            return Err(SnapshotError::TrailingBytes(payload.len() - c.pos));
        }
        Ok(AtlasSnapshot {
            summary_version,
            golden_digest,
            interfaces,
            prefixes,
            segments,
        })
    }

    /// Reads and decodes a snapshot file, mapping I/O failures into the
    /// same typed error space as decode failures — the serving layer
    /// never panics on a missing or corrupt snapshot.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<AtlasSnapshot, SnapshotError> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| SnapshotError::Io(e.to_string()))?;
        AtlasSnapshot::decode(&bytes)
    }
}

/// A bounds-checked little-endian reader.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated {
            need: usize::MAX,
            have: self.bytes.len(),
        })?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated {
                need: end,
                have: self.bytes.len(),
            })?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let mut w = [0u8; 2];
        w.copy_from_slice(self.take(2)?);
        Ok(u16::from_le_bytes(w))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let mut w = [0u8; 4];
        w.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(w))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let mut w = [0u8; 8];
        w.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(w))
    }

    /// Reads a u32 element count and pre-validates that `count × width`
    /// bytes remain, so a forged count cannot drive a huge allocation.
    fn len_prefix(&mut self, width: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        let need = n.checked_mul(width).ok_or(SnapshotError::Truncated {
            need: usize::MAX,
            have: self.bytes.len(),
        })?;
        if self.bytes.len() - self.pos < need {
            return Err(SnapshotError::Truncated {
                need: self.pos + need,
                have: self.bytes.len(),
            });
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AtlasSnapshot {
        AtlasSnapshot {
            summary_version: 2,
            golden_digest: 0xDEAD_BEEF_CAFE_F00D,
            interfaces: vec![
                IfaceRecord {
                    addr: Ipv4::new(10, 0, 0, 1),
                    is_cbi: false,
                    owner: Asn(64500),
                    metro_pin: Some((7, 3)),
                    region_pin: None,
                    groups: 0,
                    vpi: false,
                },
                IfaceRecord {
                    addr: Ipv4::new(10, 0, 0, 2),
                    is_cbi: true,
                    owner: Asn(64501),
                    metro_pin: None,
                    region_pin: Some(4),
                    groups: 0b10_0001,
                    vpi: true,
                },
            ],
            prefixes: vec![
                ("10.0.0.0/8".parse().unwrap(), Asn(64500)),
                ("10.1.0.0/16".parse().unwrap(), Asn(64501)),
            ],
            segments: vec![(Ipv4::new(10, 0, 0, 1), Ipv4::new(10, 0, 0, 2))],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample();
        let bytes = snap.encode();
        let back = AtlasSnapshot::decode(&bytes).expect("decodes");
        assert_eq!(back, snap);
        // Byte determinism: same snapshot, same bytes.
        assert_eq!(bytes, snap.encode());
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                AtlasSnapshot::decode(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let bytes = sample().encode();
        for cut in [0, 7, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            assert!(matches!(
                AtlasSnapshot::decode(&bytes[..cut]),
                Err(SnapshotError::Truncated { .. })
            ));
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            AtlasSnapshot::decode(&extended),
            Err(SnapshotError::TrailingBytes(1))
        ));
    }

    #[test]
    fn wrong_magic_and_format_are_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(AtlasSnapshot::decode(&bytes), Err(SnapshotError::BadMagic));
        let mut bytes = sample().encode();
        bytes[8] = 99;
        // Format bump: rejected as unsupported, not misparsed.
        assert!(matches!(
            AtlasSnapshot::decode(&bytes),
            Err(SnapshotError::UnsupportedFormat(_))
        ));
    }

    /// Hostile-input sweep: EVERY prefix of a valid snapshot must come
    /// back as a typed error — never a panic, never an `Ok`. This is
    /// the exhaustive companion to the spot checks above (the sample
    /// file is a few hundred bytes, so the O(n²) digest work is trivial).
    #[test]
    fn every_prefix_truncation_yields_a_typed_error() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            match AtlasSnapshot::decode(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("prefix of {cut} bytes decoded successfully"),
            }
        }
    }

    /// Memory-DoS regression: a forged element count must be rejected by
    /// the `len_prefix` pre-validation (count × width vs remaining
    /// bytes), not answered with a multi-gigabyte `Vec::with_capacity`.
    /// The tampered file is re-signed so the attack reaches the table
    /// parser instead of dying at the digest check.
    #[test]
    fn forged_table_count_is_rejected_before_allocation() {
        for forged in [u32::MAX, 1 << 24] {
            let mut bytes = sample().encode();
            // First table's count lives at the start of the payload.
            bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&forged.to_le_bytes());
            let digest = file_digest(&[&bytes[..DIGEST_OFFSET], &bytes[HEADER_LEN..]]);
            bytes[DIGEST_OFFSET..HEADER_LEN].copy_from_slice(&digest.to_le_bytes());
            assert!(
                matches!(
                    AtlasSnapshot::decode(&bytes),
                    Err(SnapshotError::Truncated { .. })
                ),
                "forged count {forged} must be a Truncated error"
            );
        }
    }

    #[test]
    fn load_reads_a_snapshot_file_and_maps_io_errors() {
        let missing = std::path::Path::new("/nonexistent/cm-snapshot.bin");
        assert!(matches!(
            AtlasSnapshot::load(missing),
            Err(SnapshotError::Io(_))
        ));

        let snap = sample();
        let path = std::env::temp_dir().join(format!("cm-snap-test-{}.bin", std::process::id()));
        std::fs::write(&path, snap.encode()).expect("write temp snapshot");
        let back = AtlasSnapshot::load(&path).expect("loads");
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = AtlasSnapshot {
            summary_version: 2,
            golden_digest: 1,
            ..AtlasSnapshot::default()
        };
        let back = AtlasSnapshot::decode(&snap.encode()).expect("decodes");
        assert_eq!(back, snap);
    }
}

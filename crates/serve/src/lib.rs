//! # cm-serve — the atlas as a served artifact
//!
//! The pipeline's `Atlas` is a transient, borrow-heavy in-process struct;
//! this crate turns its inference products into something millions of
//! clients could query:
//!
//! * [`AtlasSnapshot`] — a versioned, byte-deterministic, dependency-free
//!   binary encoding of the serving view (interface records, announced
//!   prefixes, ICG edges). The header pins compatibility with both the
//!   snapshot *format* version and the `AtlasSummary` schema version, and
//!   carries the run's golden digest plus a payload checksum, so a
//!   tampered or truncated file is rejected on open, and a loaded
//!   snapshot can be traced back to the exact golden-atlas digest it was
//!   cut from.
//! * [`Engine`] — an embedded thread-per-core query engine over a loaded
//!   snapshot: point lookups (interface → ABI/CBI, owner, pin, group,
//!   VPI), longest-prefix queries over the `cm-net` trie, and ICG
//!   neighborhood queries, with per-shard `cm-obs` latency histograms.
//!
//! The `serve-spammer` binary in `cm-bench` drives the engine from N
//! worker threads and appends throughput + tail-latency records to
//! `BENCH_serve.json`.

#![deny(missing_docs)]

pub mod engine;
pub mod snapshot;

pub use engine::{Engine, QueryKind, Shard};
pub use snapshot::{AtlasSnapshot, IfaceRecord, SnapshotError, FORMAT_VERSION};

//! The embedded thread-per-core query engine.
//!
//! An [`Engine`] is built once from a decoded [`AtlasSnapshot`] and then
//! shared immutably across worker threads: every index is read-only
//! after construction (a sorted record table for point lookups, a
//! [`PrefixTrie`] for longest-prefix queries, a CSR adjacency for ICG
//! neighborhoods), so queries take `&self` and never contend on a lock.
//!
//! The *per-core* state is the shard: each worker claims one
//! [`Shard`], which carries its own `cm-obs` [`Registry`] with a latency
//! histogram and per-query-kind counters. Workers record into their own
//! shard only; the merged exposition across shards is the service-level
//! view.

use crate::snapshot::{AtlasSnapshot, IfaceRecord};
use cm_net::{Asn, Ipv4, Prefix, PrefixTrie};
use cm_obs::{HistogramValue, MetricValue, Recorder, Registry, RollingQuantile, Snapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The three query families the engine answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Point lookup: interface → its full serving record.
    Point,
    /// Longest-prefix match over the announced-prefix table.
    LongestPrefix,
    /// ICG neighborhood: all segment counterparts of an interface.
    Neighbors,
}

impl QueryKind {
    /// All kinds, in a fixed order (used for mix accounting).
    pub const ALL: [QueryKind; 3] = [
        QueryKind::Point,
        QueryKind::LongestPrefix,
        QueryKind::Neighbors,
    ];

    /// The shard counter name for this kind.
    pub fn counter(self) -> &'static str {
        match self {
            QueryKind::Point => "serve_point_total",
            QueryKind::LongestPrefix => "serve_lpm_total",
            QueryKind::Neighbors => "serve_neighbors_total",
        }
    }

    /// The short span name for this kind (sampled flight-recorder spans).
    pub fn span_name(self) -> &'static str {
        match self {
            QueryKind::Point => "point",
            QueryKind::LongestPrefix => "lpm",
            QueryKind::Neighbors => "neighbors",
        }
    }
}

/// Upper bounds (nanoseconds) of the per-shard latency histogram:
/// exponential from 64 ns to ~1 ms, the range an in-process lookup can
/// realistically land in.
pub const LATENCY_BOUNDS_NS: [f64; 15] = [
    64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0, 32768.0, 65536.0, 131072.0,
    262144.0, 524288.0, 1048576.0,
];

/// The name of the per-shard latency histogram.
pub const LATENCY_HISTOGRAM: &str = "serve_query_latency_ns";

/// Every `SPAN_SAMPLE_EVERY`-th recorded query per shard also emits a
/// flight-recorder span (`query;<kind>`), so the recorder stays bounded
/// under sustained load while latency spikes still show up in traces.
pub const SPAN_SAMPLE_EVERY: u64 = 64;

/// Capacity of the per-shard rolling latency window.
pub const LATENCY_WINDOW: usize = 1024;

/// One worker's observability shard.
pub struct Shard {
    /// This shard's private metrics registry (latency histogram plus
    /// per-kind counters).
    pub registry: Registry,
    /// This shard's flight recorder: sampled per-kind query spans, with
    /// the measured latency quarantined as the span's wall clock.
    pub recorder: Recorder,
    /// Rolling window of the most recent query latencies (nanoseconds).
    sketch: Mutex<RollingQuantile>,
    /// Queries recorded on this shard (drives span sampling).
    recorded: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        let registry = Registry::new();
        registry.histogram(LATENCY_HISTOGRAM, &LATENCY_BOUNDS_NS);
        for kind in QueryKind::ALL {
            registry.inc(kind.counter(), 0);
        }
        Shard {
            registry,
            recorder: Recorder::default(),
            sketch: Mutex::new(RollingQuantile::new(LATENCY_WINDOW)),
            recorded: AtomicU64::new(0),
        }
    }

    /// Records one answered query of `kind` that took `latency_ns`.
    pub fn record(&self, kind: QueryKind, latency_ns: f64) {
        self.registry.inc(kind.counter(), 1);
        self.registry.observe(LATENCY_HISTOGRAM, latency_ns);
        self.observe_latency(kind, latency_ns);
    }

    /// Feeds one measured latency into the rolling window and, every
    /// [`SPAN_SAMPLE_EVERY`]-th feed, emits a `query-kind` span with the
    /// latency quarantined as its wall clock. Leaves the counters and
    /// the histogram alone — load generators that bulk-record those
    /// after their hot loop call this for the sampled subset only.
    pub fn observe_latency(&self, kind: QueryKind, latency_ns: f64) {
        if let Ok(mut sketch) = self.sketch.lock() {
            sketch.push(latency_ns);
        }
        // The sample decision is a pure function of this shard's own op
        // count — deterministic for any fixed per-shard op sequence.
        let n = self.recorded.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(SPAN_SAMPLE_EVERY) {
            let name = kind.span_name();
            self.recorder.span_start(name);
            self.recorder.span_end(
                name,
                Some(latency_ns / 1e6),
                vec![("sample_index", n / SPAN_SAMPLE_EVERY)],
            );
        }
    }

    /// A quantile over this shard's rolling latency window (`None` until
    /// the first query lands).
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        self.sketch.lock().ok().and_then(|s| s.quantile(q))
    }

    /// This shard's rolling latency window, oldest first.
    pub fn latency_window(&self) -> Vec<f64> {
        self.sketch.lock().map(|s| s.window()).unwrap_or_default()
    }
}

/// The read-only query engine over one loaded snapshot.
pub struct Engine {
    /// Interface records, ascending by address (point-lookup index).
    records: Vec<IfaceRecord>,
    /// Announced prefixes → origin ASN (longest-prefix index).
    trie: PrefixTrie<Asn>,
    /// CSR adjacency: `neighbors[offsets[i]..offsets[i+1]]` are the ICG
    /// counterparts of `records[i]`, ascending.
    offsets: Vec<u32>,
    neighbors: Vec<Ipv4>,
    /// Per-worker observability shards.
    shards: Vec<Shard>,
    /// Header metadata of the snapshot this engine was built from.
    summary_version: u32,
    golden_digest: u64,
}

impl Engine {
    /// Builds the engine from a decoded snapshot with `shards` worker
    /// shards (at least one).
    pub fn build(snapshot: &AtlasSnapshot, shards: usize) -> Engine {
        let mut records = snapshot.interfaces.clone();
        records.sort_unstable_by_key(|r| r.addr);
        let trie: PrefixTrie<Asn> = snapshot.prefixes.iter().copied().collect();

        // CSR adjacency over the sorted record table. Segments name
        // (abi, cbi) pairs; each side lists the other as a neighbor.
        let idx_of = |addr: Ipv4| records.binary_search_by_key(&addr, |r| r.addr).ok();
        let mut pairs: Vec<(u32, Ipv4)> = Vec::with_capacity(snapshot.segments.len() * 2);
        for &(abi, cbi) in &snapshot.segments {
            if let Some(i) = idx_of(abi) {
                pairs.push((i as u32, cbi));
            }
            if let Some(i) = idx_of(cbi) {
                pairs.push((i as u32, abi));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = Vec::with_capacity(records.len() + 1);
        let mut neighbors = Vec::with_capacity(pairs.len());
        offsets.push(0u32);
        let mut cursor = 0usize;
        for i in 0..records.len() {
            while cursor < pairs.len() && pairs[cursor].0 == i as u32 {
                neighbors.push(pairs[cursor].1);
                cursor += 1;
            }
            offsets.push(neighbors.len() as u32);
        }

        Engine {
            records,
            trie,
            offsets,
            neighbors,
            shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
            summary_version: snapshot.summary_version,
            golden_digest: snapshot.golden_digest,
        }
    }

    /// `AtlasSummary` schema version of the source snapshot.
    pub fn summary_version(&self) -> u32 {
        self.summary_version
    }

    /// Golden digest of the source snapshot.
    pub fn golden_digest(&self) -> u64 {
        self.golden_digest
    }

    /// Number of interface records served.
    pub fn interface_count(&self) -> usize {
        self.records.len()
    }

    /// All interface records, ascending by address — lets load
    /// generators draw guaranteed-hit targets by index.
    pub fn records(&self) -> &[IfaceRecord] {
        &self.records
    }

    /// Number of announced prefixes in the longest-prefix index.
    pub fn prefix_count(&self) -> usize {
        self.trie.len()
    }

    /// Number of observability shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The `i`-th observability shard (wraps around, so any worker index
    /// is valid).
    pub fn shard(&self, i: usize) -> &Shard {
        &self.shards[i % self.shards.len()]
    }

    /// Merged metrics across all shards: counters summed, histogram
    /// buckets summed bound-for-bound (every shard uses the same fixed
    /// [`LATENCY_BOUNDS_NS`], so the merge is exact).
    pub fn merged_metrics(&self) -> Snapshot {
        let mut hist = HistogramValue {
            bounds: LATENCY_BOUNDS_NS.to_vec(),
            counts: vec![0; LATENCY_BOUNDS_NS.len()],
            overflow: 0,
            rejected: 0,
        };
        let mut totals = [0u64; QueryKind::ALL.len()];
        for shard in &self.shards {
            let snap = shard.registry.snapshot();
            for (kind, total) in QueryKind::ALL.iter().zip(totals.iter_mut()) {
                *total += snap.counter(kind.counter()).unwrap_or(0);
            }
            if let Some(h) = snap.histogram(LATENCY_HISTOGRAM) {
                hist.overflow += h.overflow;
                hist.rejected += h.rejected;
                for (sum, n) in hist.counts.iter_mut().zip(&h.counts) {
                    *sum += n;
                }
            }
        }
        let mut merged = Snapshot::default();
        for (kind, total) in QueryKind::ALL.iter().zip(totals) {
            merged
                .metrics
                .insert(kind.counter().to_string(), MetricValue::Counter(total));
        }
        merged
            .metrics
            .insert(LATENCY_HISTOGRAM.to_string(), MetricValue::Histogram(hist));
        merged
    }

    /// A quantile over the union of every shard's rolling latency
    /// window: shard windows are concatenated in shard order (each
    /// oldest-first) and one quantile is computed over the multiset, so
    /// the answer is a pure function of the windows' contents. `None`
    /// until any shard has recorded a query.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        let mut merged = RollingQuantile::new(LATENCY_WINDOW * self.shards.len());
        for shard in &self.shards {
            for v in shard.latency_window() {
                merged.push(v);
            }
        }
        merged.quantile(q)
    }

    /// Point lookup: the serving record of `addr`, if it is a known
    /// border interface.
    pub fn point(&self, addr: Ipv4) -> Option<&IfaceRecord> {
        self.records
            .binary_search_by_key(&addr, |r| r.addr)
            .ok()
            .and_then(|i| self.records.get(i))
    }

    /// Longest-prefix query: the most specific announced prefix covering
    /// `addr`, with its origin ASN.
    pub fn longest_prefix(&self, addr: Ipv4) -> Option<(Prefix, Asn)> {
        self.trie.longest_match(addr).map(|(p, &asn)| (p, asn))
    }

    /// ICG neighborhood: all segment counterparts of `addr`, ascending;
    /// empty for unknown interfaces.
    pub fn neighbors(&self, addr: Ipv4) -> &[Ipv4] {
        let Ok(i) = self.records.binary_search_by_key(&addr, |r| r.addr) else {
            return &[];
        };
        // offsets has records.len() + 1 entries by construction, but a
        // decoded-then-mutated engine is cheap to guard against: absent
        // or inverted offsets answer empty rather than panic.
        match (self.offsets.get(i), self.offsets.get(i + 1)) {
            (Some(&lo), Some(&hi)) => self.neighbors.get(lo as usize..hi as usize).unwrap_or(&[]),
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::IfaceRecord;

    fn snap() -> AtlasSnapshot {
        let rec = |addr: Ipv4, is_cbi: bool, owner: u32| IfaceRecord {
            addr,
            is_cbi,
            owner: Asn(owner),
            ..IfaceRecord::default()
        };
        let a = |s: &str| -> Ipv4 { s.parse().unwrap() };
        AtlasSnapshot {
            summary_version: 2,
            golden_digest: 42,
            interfaces: vec![
                rec(a("10.0.0.1"), false, 64500),
                rec(a("10.0.0.2"), true, 64501),
                rec(a("10.0.0.6"), true, 64502),
            ],
            prefixes: vec![
                ("10.0.0.0/8".parse().unwrap(), Asn(64500)),
                ("10.0.0.0/30".parse().unwrap(), Asn(64501)),
            ],
            segments: vec![
                (a("10.0.0.1"), a("10.0.0.2")),
                (a("10.0.0.1"), a("10.0.0.6")),
            ],
        }
    }

    #[test]
    fn point_lookup_answers_known_interfaces_only() {
        let e = Engine::build(&snap(), 2);
        let r = e.point("10.0.0.2".parse().unwrap()).unwrap();
        assert!(r.is_cbi);
        assert_eq!(r.owner, Asn(64501));
        assert!(e.point("10.0.0.9".parse().unwrap()).is_none());
        assert_eq!(e.interface_count(), 3);
    }

    #[test]
    fn longest_prefix_prefers_the_most_specific() {
        let e = Engine::build(&snap(), 1);
        let (p, asn) = e.longest_prefix("10.0.0.2".parse().unwrap()).unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/30");
        assert_eq!(asn, Asn(64501));
        let (p, asn) = e.longest_prefix("10.9.9.9".parse().unwrap()).unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/8");
        assert_eq!(asn, Asn(64500));
        assert!(e.longest_prefix("11.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn neighborhood_is_symmetric_and_sorted() {
        let e = Engine::build(&snap(), 1);
        let abi: Ipv4 = "10.0.0.1".parse().unwrap();
        let nbrs: Vec<String> = e.neighbors(abi).iter().map(Ipv4::to_string).collect();
        assert_eq!(nbrs, ["10.0.0.2", "10.0.0.6"]);
        let back = e.neighbors("10.0.0.6".parse().unwrap());
        assert_eq!(back, [abi]);
        assert!(e.neighbors("10.0.0.9".parse().unwrap()).is_empty());
    }

    #[test]
    fn shards_record_independently_and_merge() {
        let e = Engine::build(&snap(), 2);
        e.shard(0).record(QueryKind::Point, 100.0);
        e.shard(1).record(QueryKind::Point, 200.0);
        e.shard(1).record(QueryKind::Neighbors, 300.0);
        // Wrap-around indexing keeps any worker index valid.
        e.shard(2).record(QueryKind::LongestPrefix, 400.0);
        let s0 = e.shard(0).registry.snapshot();
        assert_eq!(s0.counter("serve_point_total"), Some(1));
        assert_eq!(s0.counter("serve_lpm_total"), Some(1));
        let merged = e.merged_metrics();
        assert_eq!(merged.counter("serve_point_total"), Some(2));
        assert_eq!(merged.counter("serve_neighbors_total"), Some(1));
        assert_eq!(merged.counter("serve_lpm_total"), Some(1));
        let h = merged.histogram(LATENCY_HISTOGRAM).unwrap();
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn shards_sample_spans_and_answer_rolling_quantiles() {
        let e = Engine::build(&snap(), 2);
        for i in 0..(2 * SPAN_SAMPLE_EVERY + 1) {
            e.shard(0).record(QueryKind::Point, 100.0 + i as f64);
        }
        e.shard(1).record(QueryKind::Neighbors, 1000.0);
        // Ops 0, 64 and 128 on shard 0 are sampled; shard 1's first op is.
        let spans = |shard: &Shard| {
            shard
                .recorder
                .events()
                .iter()
                .filter(|ev| matches!(ev.kind, cm_obs::EventKind::SpanEnd { .. }))
                .count()
        };
        assert_eq!(spans(e.shard(0)), 3);
        assert_eq!(spans(e.shard(1)), 1);
        // Per-shard and merged quantiles agree with the fed sequences.
        assert_eq!(e.shard(0).latency_quantile(0.0), Some(100.0));
        assert_eq!(e.shard(1).latency_quantile(0.5), Some(1000.0));
        assert_eq!(e.latency_quantile(1.0), Some(1000.0));
        assert!(e.shard(0).latency_window().len() as u64 == 2 * SPAN_SAMPLE_EVERY + 1);
    }
}

//! One benchmark per paper figure: regenerating each figure's data series.

use cloudmap::icg::Icg;
use cloudmap::pinning::{Pinner, PinningConfig};
use cm_bench::{build_internet, report, run_study};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let inet = build_internet("tiny", 2019);
    let atlas = run_study(&inet);
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    // Figures 4a/4b/5 all come out of the pinning engine.
    g.bench_function("fig4_and_5_pinning_run", |b| {
        b.iter(|| {
            let pinner = Pinner {
                pool: &atlas.pool,
                dns: &atlas.dns,
                rtt: &atlas.rtt,
                datasets: &atlas.datasets,
                alias_sets: &atlas.alias_sets,
                region_metro: &atlas.region_metro,
                catalog: &inet.metros,
                cfg: PinningConfig::default(),
            };
            pinner.run()
        })
    });
    g.bench_function("fig4a_render", |b| {
        b.iter(|| report::fig4a(black_box(&atlas)))
    });
    g.bench_function("fig4b_render", |b| {
        b.iter(|| report::fig4b(black_box(&atlas)))
    });
    g.bench_function("fig5_render", |b| {
        b.iter(|| report::fig5(black_box(&atlas)))
    });
    g.bench_function("fig6_features_render", |b| {
        b.iter(|| report::fig6(black_box(&atlas)))
    });
    g.bench_function("fig7_icg_build", |b| {
        b.iter(|| Icg::build(&atlas.pool, &atlas.pinning))
    });
    g.bench_function("pinning_cross_validation", |b| {
        b.iter(|| {
            let pinner = Pinner {
                pool: &atlas.pool,
                dns: &atlas.dns,
                rtt: &atlas.rtt,
                datasets: &atlas.datasets,
                alias_sets: &atlas.alias_sets,
                region_metro: &atlas.region_metro,
                catalog: &inet.metros,
                cfg: PinningConfig::default(),
            };
            pinner.cross_validate(3, 0.7, 5)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

//! One benchmark per paper table: each measures regenerating that table's
//! content from the shared atlas (the expensive analysis plus rendering).
//! Run `cargo run --release -p cm-bench --bin experiments` for the values.

use cloudmap::groups::Grouping;
use cloudmap::verify::run_heuristics;
use cm_bench::{build_internet, report, run_study};
use cm_dataplane::publicly_reachable;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let inet = build_internet("tiny", 2019);
    let atlas = run_study(&inet);
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);

    g.bench_function("table1_annotation_fractions", |b| {
        b.iter(|| report::table1(black_box(&atlas)))
    });
    g.bench_function("table2_heuristics", |b| {
        b.iter(|| {
            let h = run_heuristics(&atlas.pool, |a| publicly_reachable(&inet, a));
            report::table2(&atlas);
            h
        })
    });
    g.bench_function("table3_pinning_render", |b| {
        b.iter(|| report::table3(black_box(&atlas)))
    });
    g.bench_function("table4_vpi_render", |b| {
        b.iter(|| report::table4(black_box(&atlas)))
    });
    g.bench_function("table5_grouping", |b| {
        b.iter(|| {
            let grouping = Grouping::build(
                &atlas.pool,
                &atlas.vpi,
                &atlas.datasets.asrel,
                &atlas.cloud_asns,
                &atlas.pinning,
                &atlas.segment_diffs,
                &atlas.snapshot,
            );
            grouping.table5()
        })
    });
    g.bench_function("table6_hybrid_census", |b| b.iter(|| atlas.groups.table6()));
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);

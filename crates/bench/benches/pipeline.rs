//! Stage-level benchmarks of the measurement pipeline.

use cloudmap::annotate::Annotator;
use cloudmap::borders::BorderCollector;
use cloudmap::pipeline::{Pipeline, PipelineConfig};
use cm_bgp::{bgp_snapshot, BgpView, RoutingTable};
use cm_dataplane::{DataPlane, DataPlaneConfig};
use cm_datasets::{DatasetConfig, PublicDatasets};
use cm_probe::Campaign;
use cm_topology::{CloudId, Internet, TopologyConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    g.bench_function("generate_tiny_internet", |b| {
        b.iter(|| Internet::generate(TopologyConfig::tiny(), black_box(7)))
    });

    let inet = Internet::generate(TopologyConfig::tiny(), 7);
    g.bench_function("build_routing_table", |b| {
        b.iter(|| RoutingTable::build(&inet, CloudId(0)))
    });
    g.bench_function("build_dataplane", |b| {
        b.iter(|| DataPlane::new(&inet, DataPlaneConfig::default()))
    });

    let plane = DataPlane::new(&inet, DataPlaneConfig::default());
    let region = inet.primary_cloud().regions[0];
    let some_peer = inet.cloud_interconnects(CloudId(0)).next().unwrap().peer;
    let dst = inet.as_node(some_peer).prefixes[0].base().saturating_next();
    g.bench_function("single_traceroute", |b| {
        b.iter(|| plane.traceroute(CloudId(0), region, black_box(dst)))
    });

    let snap = bgp_snapshot(&inet);
    let view = BgpView::compute(&inet, CloudId(0), 16, 7);
    let visible = view
        .visible_peers
        .iter()
        .map(|&p| inet.as_node(p).asn)
        .collect();
    let ds = PublicDatasets::derive(&inet, DatasetConfig::default(), &visible, 7);
    let org = ds
        .as2org
        .org_of(inet.as_node(inet.primary_cloud().ases[0]).asn)
        .unwrap();
    let ann = Annotator::new(&snap, &ds);
    g.bench_function("sweep_and_border_inference", |b| {
        b.iter(|| {
            let campaign = Campaign::new(&plane, CloudId(0));
            let mut collector = BorderCollector::new(&ann, org);
            campaign.sweep_each(|t| collector.observe(t));
            collector.finish()
        })
    });

    g.bench_function("full_pipeline_tiny", |b| {
        b.iter(|| {
            Pipeline::new(
                &inet,
                PipelineConfig {
                    crossval_folds: 0,
                    ..PipelineConfig::default()
                },
            )
            .run()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);

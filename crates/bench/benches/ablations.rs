//! Ablation benchmarks for the design choices called out in DESIGN.md.
//!
//! Each variant runs the pipeline under one modified knob; the benchmark
//! reports the runtime cost, and the setup prints the *outcome* deltas once
//! (coverage, visibility, accuracy) so the quality impact is visible next
//! to the time impact.

use cloudmap::pinning::PinningConfig;
use cloudmap::pipeline::{Pipeline, PipelineConfig};
use cm_bgp::BgpView;
use cm_dataplane::DataPlaneConfig;
use cm_topology::{CloudId, Internet, ResponsePolicyMix, TopologyConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn quiet_cfg() -> PipelineConfig {
    PipelineConfig {
        crossval_folds: 0,
        run_vpi: false,
        ..PipelineConfig::default()
    }
}

fn bench_ablations(c: &mut Criterion) {
    let inet = Internet::generate(TopologyConfig::tiny(), 2019);
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    // --- expansion probing on/off (§4.2) --------------------------------
    {
        let with = Pipeline::new(&inet, quiet_cfg())
            .run()
            .expect("pipeline run");
        let without = Pipeline::new(
            &inet,
            PipelineConfig {
                run_expansion: false,
                ..quiet_cfg()
            },
        )
        .run()
        .expect("pipeline run");
        eprintln!(
            "# ablation expansion: CBIs {} -> {} without round two",
            with.pool.cbis.len(),
            without.pool.cbis.len()
        );
    }
    g.bench_function("expansion_on", |b| {
        b.iter(|| Pipeline::new(&inet, quiet_cfg()).run())
    });
    g.bench_function("expansion_off", |b| {
        b.iter(|| {
            Pipeline::new(
                &inet,
                PipelineConfig {
                    run_expansion: false,
                    ..quiet_cfg()
                },
            )
            .run()
        })
    });

    // --- collector density (BGP visibility) ------------------------------
    {
        for n in [4usize, 16, 64] {
            let view = BgpView::compute(&inet, CloudId(0), n, 2019);
            eprintln!(
                "# ablation collectors: {n} feeders -> {} visible peerings",
                view.visible_peers.len()
            );
        }
    }
    g.bench_function("bgp_view_16_feeders", |b| {
        b.iter(|| BgpView::compute(&inet, CloudId(0), 16, 2019))
    });

    // --- co-presence threshold (§6.1 rule 2) ------------------------------
    {
        for t in [1.0f64, 2.0, 4.0] {
            let atlas = Pipeline::new(
                &inet,
                PipelineConfig {
                    pinning: PinningConfig {
                        copresence_ms: t,
                        ..PinningConfig::default()
                    },
                    ..quiet_cfg()
                },
            )
            .run()
            .expect("pipeline run");
            let s = cloudmap::score::pin_score(&atlas);
            eprintln!(
                "# ablation copresence {t} ms: coverage {:.3}, accuracy {:.3}",
                s.metro_coverage, s.metro_accuracy
            );
        }
    }

    // --- anchor-source ablation (§6.1) -------------------------------------
    {
        let names = ["dns", "ixp", "footprint", "native"];
        for drop in 0..4usize {
            let mut anchors = [true; 4];
            anchors[drop] = false;
            let atlas = Pipeline::new(
                &inet,
                PipelineConfig {
                    pinning: PinningConfig {
                        enabled_anchors: anchors,
                        ..PinningConfig::default()
                    },
                    ..quiet_cfg()
                },
            )
            .run()
            .expect("pipeline run");
            let s = cloudmap::score::pin_score(&atlas);
            eprintln!(
                "# ablation anchors without {}: coverage {:.3}, accuracy {:.3}",
                names[drop], s.metro_coverage, s.metro_accuracy
            );
        }
    }

    // --- response-policy mix (silent/third-party routers) -----------------
    {
        let noisy = Internet::generate(
            TopologyConfig {
                response_mix: ResponsePolicyMix {
                    incoming: 0.60,
                    fixed: 0.25,
                    silent: 0.15,
                },
                ..TopologyConfig::tiny()
            },
            2019,
        );
        let atlas = Pipeline::new(&noisy, quiet_cfg())
            .run()
            .expect("pipeline run");
        let s = cloudmap::score::border_score(&atlas);
        eprintln!(
            "# ablation noisy responders: CBI precision {:.3}, peer recall {:.3}",
            s.cbi.precision, s.peers.recall
        );
    }

    // --- probe-loss sensitivity -------------------------------------------
    g.bench_function("lossy_dataplane", |b| {
        b.iter(|| {
            Pipeline::new(
                &inet,
                PipelineConfig {
                    dataplane: DataPlaneConfig {
                        loss_rate: 0.10,
                        ..DataPlaneConfig::default()
                    },
                    ..quiet_cfg()
                },
            )
            .run()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);

//! Rendering each of the paper's tables and figures as text (with the
//! paper's reference values alongside) and as TSV series for plotting.

use crate::{cdf_at, quantile, sorted};
use cloudmap::groups::PeeringGroup;
use cloudmap::pipeline::Atlas;
use std::fmt::Write as _;

/// Table 1: ABIs/CBIs with annotation-source fractions, before and after
/// expansion probing.
pub fn table1(atlas: &Atlas<'_>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1 — border interfaces and annotation sources");
    let _ = writeln!(
        out,
        "{:<6} {:>8} {:>7} {:>8} {:>7}   paper",
        "", "All", "BGP%", "Whois%", "IXP%"
    );
    let rows = [
        ("ABI", atlas.table1[0], "3.68k / 38.4 / 61.6 / -"),
        ("CBI", atlas.table1[1], "21.73k / 54.7 / 24.8 / 20.5"),
        ("eABI", atlas.table1[2], "3.78k / 38.9 / 61.2 / -"),
        ("eCBI", atlas.table1[3], "24.75k / 79.8 / 2.3 / 17.9"),
    ];
    for (name, r, paper) in rows {
        let _ = writeln!(
            out,
            "{:<6} {:>8} {:>6.1}% {:>7.1}% {:>6.1}%   ({paper})",
            name,
            r.count,
            100.0 * r.bgp,
            100.0 * r.whois,
            100.0 * r.ixp
        );
    }
    out
}

/// Table 2: ABIs (and their CBIs) confirmed per §5.1 heuristic.
pub fn table2(atlas: &Atlas<'_>) -> String {
    let t = atlas.heuristics.table2(&atlas.pool);
    // The heuristics ran before the §5.2 corrections; their universe is the
    // union of confirmed and unconfirmed interfaces at that point, not the
    // corrected pool.
    let universe: std::collections::HashSet<_> = atlas
        .heuristics
        .confirmed()
        .union(&atlas.heuristics.unconfirmed)
        .copied()
        .collect();
    let total_abis = universe.len().max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2 — heuristic confirmation of candidate ABIs (CBIs)"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>14} {:>14} {:>14}",
        "", "IXP", "Hybrid", "Reachable"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>7} ({:>5}) {:>7} ({:>5}) {:>7} ({:>5})",
        "Individual", t[0].0, t[0].1, t[1].0, t[1].1, t[2].0, t[2].1
    );
    let _ = writeln!(
        out,
        "{:<12} {:>7} ({:>5}) {:>7} ({:>5}) {:>7} ({:>5})",
        "Cumulative", t[3].0, t[3].1, t[4].0, t[4].1, t[5].0, t[5].1
    );
    let _ = writeln!(
        out,
        "confirmed: {:.1}% of ABIs (paper: 87.8%); unconfirmed: {}",
        100.0 * t[5].0 as f64 / total_abis as f64,
        atlas.heuristics.unconfirmed.len()
    );
    let _ = writeln!(
        out,
        "alias corrections: {} ABI→CBI, {} CBI→ABI, {} CBI→CBI (paper: 18/2/25)",
        atlas.changes.abi_to_cbi, atlas.changes.cbi_to_abi, atlas.changes.cbi_to_cbi
    );
    out
}

/// Table 3: anchors per evidence source and pinned interfaces per rule.
pub fn table3(atlas: &Atlas<'_>) -> String {
    let a = atlas.pinning.anchor_counts;
    let p = atlas.pinning.pinned_counts;
    let mut out = String::new();
    let _ = writeln!(out, "Table 3 — anchors and co-presence pinning");
    let _ = writeln!(
        out,
        "{:<6} {:>7} {:>7} {:>7} {:>8} | {:>7} {:>9}",
        "", "DNS", "IXP", "Metro", "Native", "Alias", "min-RTT"
    );
    let _ = writeln!(
        out,
        "{:<6} {:>7} {:>7} {:>7} {:>8} | {:>7} {:>9}",
        "Exc.", a[0].0, a[1].0, a[2].0, a[3].0, p[0].0, p[1].0
    );
    let _ = writeln!(
        out,
        "{:<6} {:>7} {:>7} {:>7} {:>8} | {:>7} {:>9}",
        "Cum.", a[0].1, a[1].1, a[2].1, a[3].1, p[0].1, p[1].1
    );
    let _ = writeln!(
        out,
        "(paper exc.: 5.31k / 2.0k / 1.66k / 1.42k | 0.65k / 5.38k; 4 rounds)"
    );
    let total = atlas.interface_count().max(1);
    let _ = writeln!(
        out,
        "metro-level coverage: {:.1}% of {} interfaces (paper: 50.2%); rounds: {}; dropped anchors: {}; conflicts: {}",
        100.0 * atlas.pinning.pins.len() as f64 / total as f64,
        total,
        atlas.pinning.rounds,
        atlas.pinning.dropped_anchors,
        atlas.pinning.conflicts,
    );
    let regional = atlas.pinning.region_pins.len();
    let _ = writeln!(
        out,
        "regional fallback: +{} interfaces → total coverage {:.1}% (paper: 80.6%)",
        regional,
        100.0 * (atlas.pinning.pins.len() + regional) as f64 / total as f64
    );
    out
}

/// Table 4: VPI detection per vantage cloud.
pub fn table4(atlas: &Atlas<'_>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 4 — VPIs: CBIs overlapping other clouds");
    let cand = atlas.vpi.candidates.max(1);
    let _ = write!(out, "{:<11}", "Pairwise");
    for (name, n) in atlas.vpi.pairwise() {
        let _ = write!(out, " {name}: {n} ({:.1}%)", 100.0 * n as f64 / cand as f64);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<11}", "Cumulative");
    for (name, n) in atlas.vpi.cumulative() {
        let _ = write!(out, " {name}: {n} ({:.1}%)", 100.0 * n as f64 / cand as f64);
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "VPI share of non-IXP CBIs: {:.1}% (paper: 20.2%, pairwise 18.9/3.2/0.9/0.0)",
        100.0 * atlas.vpi.vpi_share()
    );
    out
}

/// Table 5: the six peering groups with aggregates.
pub fn table5(atlas: &Atlas<'_>) -> String {
    let rows = atlas.groups.table5();
    let n_as = atlas.groups.peer_count().max(1);
    let n_cbi = atlas.pool.cbis.len().max(1);
    let n_abi = atlas.pool.abis.len().max(1);
    let paper: &[(&str, &str)] = &[
        ("Pb-nB", "2.52k (71%) 3.93k (16%) 0.79k (21%)"),
        ("Pb-B", "0.20k (5%) 0.56k (2%) 0.56k (15%)"),
        ("Pb", "2.69k (76%) 4.46k (18%) 0.83k (22%)"),
        ("Pr-nB-V", "0.24k (7%) 2.99k (12%) 0.54k (14%)"),
        ("Pr-nB-nV", "1.1k (31%) 10.24k (41%) 2.59k (69%)"),
        ("Pr-nB", "1.18k (33%) 13.24k (53%) 2.68k (71%)"),
        ("Pr-B-nV", "0.11k (3%) 5.67k (23%) 2.07k (55%)"),
        ("Pr-B-V", "0.06k (2%) 2.09k (8%) 0.33k (9%)"),
        ("Pr-B", "0.12k (3%) 7.76k (31%) 2.11k (56%)"),
    ];
    let mut out = String::new();
    let _ = writeln!(out, "Table 5 — peering groups");
    let _ = writeln!(
        out,
        "{:<9} {:>7} {:>5} {:>7} {:>5} {:>7} {:>5}   paper (ASes CBIs ABIs)",
        "Group", "ASes", "%", "CBIs", "%", "ABIs", "%"
    );
    for (i, (label, r)) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<9} {:>7} {:>4.0}% {:>7} {:>4.0}% {:>7} {:>4.0}%   ({})",
            label,
            r.ases,
            100.0 * r.ases as f64 / n_as as f64,
            r.cbis,
            100.0 * r.cbis as f64 / n_cbi as f64,
            r.abis,
            100.0 * r.abis as f64 / n_abi as f64,
            paper[i].1,
        );
    }
    let _ = writeln!(
        out,
        "hidden peerings: {:.1}% of (AS, group) memberships (paper: 33.3%)",
        100.0 * atlas.groups.hidden_share()
    );
    let _ = writeln!(
        out,
        "coverage vs BGP: {} BGP-visible peers, {} discovered ({:.0}%), {} inferred total (paper: 250 / 93% / 3.3k)",
        atlas.coverage.bgp_peers,
        atlas.coverage.discovered_of_bgp,
        100.0 * atlas.coverage.discovered_of_bgp as f64 / atlas.coverage.bgp_peers.max(1) as f64,
        atlas.coverage.inferred_peers,
    );
    out
}

/// Table 6: the hybrid-peering census.
pub fn table6(atlas: &Atlas<'_>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 6 — hybrid peering combinations (top 15)");
    let _ = writeln!(
        out,
        "(paper top: Pb-nB 2187; Pr-nB-nV 686; Pr-nB-nV;Pb-nB 207; Pb-B 117; ...)"
    );
    for (combo, n) in atlas.groups.table6().into_iter().take(15) {
        let _ = writeln!(out, "{n:>6}  {combo}");
    }
    out
}

/// Figure 4a: CDF of min-RTT from the closest region to each ABI.
pub fn fig4a(atlas: &Atlas<'_>) -> String {
    let v = sorted(&atlas.pinning.fig4a_abi_rtts);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 4a — min-RTT to ABIs from the closest region");
    let _ = writeln!(
        out,
        "n={}, p25={:.2}ms p50={:.2}ms p75={:.2}ms p95={:.2}ms",
        v.len(),
        quantile(&v, 0.25),
        quantile(&v, 0.50),
        quantile(&v, 0.75),
        quantile(&v, 0.95)
    );
    let _ = writeln!(
        out,
        "share below 2 ms: {:.1}% (paper: ~40% knee at 2 ms)",
        100.0 * cdf_at(&v, 2.0)
    );
    out
}

/// Figure 4b: CDF of per-segment min-RTT differences.
pub fn fig4b(atlas: &Atlas<'_>) -> String {
    let v = sorted(&atlas.pinning.fig4b_segment_diffs);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 4b — min-RTT difference across segments");
    let _ = writeln!(
        out,
        "n={}, p25={:.2}ms p50={:.2}ms p75={:.2}ms p95={:.2}ms",
        v.len(),
        quantile(&v, 0.25),
        quantile(&v, 0.50),
        quantile(&v, 0.75),
        quantile(&v, 0.95)
    );
    let _ = writeln!(
        out,
        "share below 2 ms: {:.1}% (paper: ~half, knee at 2 ms)",
        100.0 * cdf_at(&v, 2.0)
    );
    out
}

/// Figure 5: ratio of the two lowest per-region RTTs for unpinned interfaces.
pub fn fig5(atlas: &Atlas<'_>) -> String {
    let v = sorted(&atlas.pinning.fig5_ratios);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5 — ratio of two lowest min-RTTs (unpinned interfaces)"
    );
    let _ = writeln!(
        out,
        "n={}, p50={:.2} p75={:.2}; share with ratio > 1.5: {:.1}% (paper: 57%)",
        v.len(),
        quantile(&v, 0.50),
        quantile(&v, 0.75),
        100.0 * (1.0 - cdf_at(&v, 1.5))
    );
    let _ = writeln!(
        out,
        "single-region interfaces: {} (paper: 1.11k)",
        atlas.pinning.single_region
    );
    out
}

/// Figure 6: per-group feature medians (full distributions in the TSV dump).
pub fn fig6(atlas: &Atlas<'_>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 6 — per-group features (median per AS)");
    let _ = writeln!(
        out,
        "{:<9} {:>9} {:>9} {:>6} {:>6} {:>8} {:>7}",
        "Group", "cone/24", "reach/24", "ABIs", "CBIs", "RTTd ms", "metros"
    );
    for g in PeeringGroup::ALL {
        let Some(f) = atlas.groups.features.get(&g) else {
            let _ = writeln!(out, "{:<9} (empty)", g.label());
            continue;
        };
        let med = |v: &[f64]| quantile(&sorted(v), 0.5);
        let _ = writeln!(
            out,
            "{:<9} {:>9.0} {:>9.0} {:>6.1} {:>6.1} {:>8.2} {:>7.1}",
            g.label(),
            med(&f.cone_slash24),
            med(&f.reachable_slash24),
            med(&f.abis),
            med(&f.cbis),
            med(&f.rtt_diff_ms),
            med(&f.metros)
        );
    }
    let _ = writeln!(
        out,
        "(paper ordering: Pr-B-nV ≫ others in cone & CBIs; Pr-*-V highest RTT diff)"
    );
    out
}

/// Figures 7a/7b: ABI and CBI degree distributions.
pub fn fig7(atlas: &Atlas<'_>) -> String {
    let abi: Vec<f64> = atlas.icg.abi_degrees().iter().map(|&d| d as f64).collect();
    let cbi: Vec<f64> = atlas.icg.cbi_degrees().iter().map(|&d| d as f64).collect();
    let mut out = String::new();
    let _ = writeln!(out, "Figure 7 — ICG degree distributions");
    let _ = writeln!(
        out,
        "ABI degree: ≤1 {:.0}%, <10 {:.0}%, <100 {:.0}%, max {} (paper: 30/70/95%, heavy tail)",
        100.0 * cdf_at(&abi, 1.0),
        100.0 * cdf_at(&abi, 9.0),
        100.0 * cdf_at(&abi, 99.0),
        abi.last().copied().unwrap_or(0.0)
    );
    let _ = writeln!(
        out,
        "CBI degree: =1 {:.0}%, ≤8 {:.0}%, max {} (paper: 50% / 90%)",
        100.0 * cdf_at(&cbi, 1.0),
        100.0 * cdf_at(&cbi, 8.0),
        cbi.last().copied().unwrap_or(0.0)
    );
    out
}

/// §6.2 pinning evaluation.
pub fn pinning_eval(atlas: &Atlas<'_>) -> String {
    let cv = atlas.crossval;
    let mut out = String::new();
    let _ = writeln!(out, "§6.2 — pinning cross-validation ({} folds)", cv.folds);
    let _ = writeln!(
        out,
        "precision {:.3} ± {:.3} (paper: 0.993), recall {:.3} ± {:.3} (paper: 0.572)",
        cv.precision_mean, cv.precision_std, cv.recall_mean, cv.recall_std
    );
    let pin = cloudmap::score::pin_score(atlas);
    let _ = writeln!(
        out,
        "ground truth (simulation only): metro accuracy {:.3}, coverage {:.3}, region accuracy {:.3}",
        pin.metro_accuracy, pin.metro_coverage, pin.region_accuracy
    );
    out
}

/// §7.4 ICG characterization.
pub fn icg(atlas: &Atlas<'_>) -> String {
    let g = &atlas.icg;
    let mut out = String::new();
    let _ = writeln!(out, "§7.4 — interface connectivity graph");
    let _ = writeln!(
        out,
        "nodes {} edges {}; largest component {:.1}% (paper: 92.3%)",
        g.nodes,
        g.edges,
        100.0 * g.largest_component_share
    );
    let _ = writeln!(
        out,
        "both-ends-pinned segments: {}; intra-metro {:.1}% (paper: 98% intra-region)",
        g.both_pinned,
        100.0 * g.intra_metro_share()
    );
    if !g.remote_examples.is_empty() {
        let _ = write!(out, "remote pinned pairs (examples):");
        for (a, b) in g.remote_examples.iter().take(5) {
            let _ = write!(
                out,
                " {}-{}",
                atlas.inet.metros.get(*a).airport,
                atlas.inet.metros.get(*b).airport
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// §8 bdrmap comparison (runs the baseline; expensive).
pub fn bdrmap(atlas: &Atlas<'_>) -> String {
    use cm_bdrmap::Bdrmap;
    use cm_dataplane::DataPlane;
    let plane = DataPlane::new(atlas.inet, atlas.config.dataplane);
    let bdr = Bdrmap {
        snapshot: &atlas.snapshot,
        datasets: &atlas.datasets,
        cloud_asns: &atlas.cloud_asns,
    };
    let result = bdr.run(&plane, cm_topology::CloudId(0));
    let cmp = cloudmap::compare::compare(atlas, &result);
    let mut out = String::new();
    let _ = writeln!(out, "§8 — bdrmap-style baseline comparison");
    let _ = writeln!(
        out,
        "ABIs  ours {} / baseline {} / common {} (paper: ~x / 4.83k / 1.85k)",
        cmp.abis.0, cmp.abis.1, cmp.abis.2
    );
    let _ = writeln!(
        out,
        "CBIs  ours {} / baseline {} / common {} (paper: ~x / 9.65k / 5.48k)",
        cmp.cbis.0, cmp.cbis.1, cmp.cbis.2
    );
    let _ = writeln!(
        out,
        "ASes  ours {} / baseline {} / common {} (paper: 3.55k / 2.66k / 2k)",
        cmp.ases.0, cmp.ases.1, cmp.ases.2
    );
    let _ = writeln!(
        out,
        "baseline inconsistencies: AS0 owners {} (paper 0.32k), multi-owner {} (paper >500), ABI/CBI flips {} (paper 872), exclusive ASes {} (paper 0.65k)",
        cmp.as0_cbis, cmp.multi_owner, cmp.flips, cmp.baseline_exclusive_ases
    );
    out
}

/// TSV dumps of every figure series (one file per figure) for plotting.
pub fn dump_tsv(atlas: &Atlas<'_>, dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let dump = |name: &str, header: &str, series: &[f64]| -> std::io::Result<()> {
        let mut s = String::from(header);
        s.push('\n');
        let v = sorted(series);
        for (i, x) in v.iter().enumerate() {
            let _ = writeln!(s, "{x}\t{}", (i + 1) as f64 / v.len() as f64);
        }
        std::fs::write(dir.join(name), s)
    };
    dump(
        "fig4a.tsv",
        "min_rtt_ms\tcdf",
        &atlas.pinning.fig4a_abi_rtts,
    )?;
    dump(
        "fig4b.tsv",
        "rtt_diff_ms\tcdf",
        &atlas.pinning.fig4b_segment_diffs,
    )?;
    dump("fig5.tsv", "rtt_ratio\tcdf", &atlas.pinning.fig5_ratios)?;
    let abi: Vec<f64> = atlas.icg.abi_degrees().iter().map(|&d| d as f64).collect();
    let cbi: Vec<f64> = atlas.icg.cbi_degrees().iter().map(|&d| d as f64).collect();
    dump("fig7a.tsv", "abi_degree\tcdf", &abi)?;
    dump("fig7b.tsv", "cbi_degree\tcdf", &cbi)?;
    // Figure 6: one row per (group, feature, value).
    let mut s = String::from("group\tfeature\tvalue\n");
    for g in PeeringGroup::ALL {
        if let Some(f) = atlas.groups.features.get(&g) {
            for (feat, vs) in [
                ("cone_slash24", &f.cone_slash24),
                ("reachable_slash24", &f.reachable_slash24),
                ("abis", &f.abis),
                ("cbis", &f.cbis),
                ("rtt_diff_ms", &f.rtt_diff_ms),
                ("metros", &f.metros),
            ] {
                let mut vs = vs.clone();
                vs.sort_by(f64::total_cmp);
                for v in vs {
                    let _ = writeln!(s, "{}\t{feat}\t{v}", g.label());
                }
            }
        }
    }
    std::fs::write(dir.join("fig6.tsv"), s)?;
    Ok(())
}

/// Stage-by-stage wall clock of the pipeline run, with the route-memo
/// hit/miss accounting for every stage that consults the RIB.
pub fn timings(atlas: &Atlas<'_>) -> String {
    let t = &atlas.timings;
    let mut out = String::new();
    let _ = writeln!(out, "Pipeline stage timings (route memo per stage)");
    let _ = writeln!(
        out,
        "{:<12} {:>9} {:>12} {:>12} {:>7}",
        "stage", "wall", "memo hits", "misses", "hit%"
    );
    for &(name, wall) in &t.stages {
        match t.memo(name) {
            Some(m) => {
                let _ = writeln!(
                    out,
                    "{:<12} {:>8.3}s {:>12} {:>12} {:>6.1}%",
                    name,
                    wall.as_secs_f64(),
                    m.hits,
                    m.misses,
                    100.0 * m.hit_rate()
                );
            }
            None => {
                let _ = writeln!(out, "{:<12} {:>8.3}s", name, wall.as_secs_f64());
            }
        }
    }
    let total = t.memo_total();
    let _ = writeln!(
        out,
        "{:<12} {:>8.3}s {:>12} {:>12} {:>6.1}%",
        "total",
        t.total().as_secs_f64(),
        total.hits,
        total.misses,
        100.0 * total.hit_rate()
    );
    out
}

/// The `trace` experiment: a human-readable stage tree from the flight
/// recorder, followed by the Prometheus-style text exposition of the
/// *live* registry (so post-run exports like the audit tallies show up
/// when the caller made them before rendering).
pub fn trace(atlas: &Atlas<'_>) -> String {
    let events = atlas.obs.recorder.events();
    let mut out = String::new();
    let _ = writeln!(out, "Flight recorder — stage tree");
    out.push_str(&cm_obs::stage_tree(&events));
    let _ = writeln!(out);
    let _ = writeln!(out, "Metrics exposition");
    out.push_str(&atlas.obs.registry.snapshot().expose());
    out
}

/// One machine-readable run record for the `BENCH_pipeline.json` history:
/// a free-form `label`, scale, seed, wall clocks (world generation and
/// the full pipeline plus each stage), the hierarchical span profile
/// (per span path: count, inclusive + self wall, deterministic cost
/// counters — the `trace-diff` localizer's input), route-memo
/// accounting, the fault plan and per-axis impact counters, the §4.1
/// filter counters, the frozen metrics registry and the campaign stats. Hand-rolled JSON — the
/// workspace deliberately carries no serialization dependency — so every
/// key below is a fixed identifier and every value a number, keeping the
/// output trivially valid. Records are appended to the history file with
/// [`append_bench_history`]; the CI perf gate compares the two newest
/// entries at the same scale.
pub fn bench_pipeline_json(
    atlas: &Atlas<'_>,
    label: &str,
    scale: &str,
    seed: u64,
    generate_secs: f64,
    pipeline_secs: f64,
) -> String {
    let t = &atlas.timings;
    let num = |x: f64| {
        if x.is_finite() {
            format!("{x:.6}")
        } else {
            "0.0".to_string()
        }
    };
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"label\": \"{label}\",");
    let _ = writeln!(out, "  \"scale\": \"{scale}\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"probe_workers\": {},", atlas.config.probe_workers);
    let _ = writeln!(out, "  \"generate_seconds\": {},", num(generate_secs));
    let _ = writeln!(out, "  \"pipeline_seconds\": {},", num(pipeline_secs));
    out.push_str("  \"stages\": [\n");
    for (i, &(name, wall)) in t.stages.iter().enumerate() {
        let comma = if i + 1 == t.stages.len() { "" } else { "," };
        match t.memo(name) {
            Some(m) => {
                let _ = writeln!(
                    out,
                    "    {{\"name\": \"{name}\", \"seconds\": {}, \"route_memo\": \
                     {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {}}}}}{comma}",
                    num(wall.as_secs_f64()),
                    m.hits,
                    m.misses,
                    num(m.hit_rate())
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "    {{\"name\": \"{name}\", \"seconds\": {}}}{comma}",
                    num(wall.as_secs_f64())
                );
            }
        }
    }
    out.push_str("  ],\n");
    // The hierarchical span profile — per span path, the aggregated
    // inclusive/self wall and the deterministic cost counters. This is
    // what `trace-diff` localizes regressions against (the flat stage
    // walls above stay for older tooling and as its fallback).
    let profile = crate::tracediff::profile_events(label, &atlas.obs.recorder.events());
    let _ = writeln!(
        out,
        "  \"spans\": {},",
        crate::tracediff::spans_json(&profile, "  ")
    );
    let total = t.memo_total();
    let _ = writeln!(
        out,
        "  \"route_memo_total\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {}}},",
        total.hits,
        total.misses,
        num(total.hit_rate())
    );
    let axes: Vec<String> = atlas
        .config
        .dataplane
        .faults
        .enabled_axes()
        .iter()
        .map(|a| format!("\"{a}\""))
        .collect();
    let _ = writeln!(out, "  \"fault_plan\": [{}],", axes.join(", "));
    let impact: Vec<String> = atlas
        .fault_impact
        .counters()
        .iter()
        .map(|(name, n)| format!("\"{name}\": {n}"))
        .collect();
    let _ = writeln!(
        out,
        "  \"fault_impact\": {{{}, \"total\": {}}},",
        impact.join(", "),
        atlas.fault_impact.total()
    );
    let d = &atlas.pool.discards;
    let _ = writeln!(
        out,
        "  \"discards\": {{\"accepted\": {}, \"no_border\": {}, \"gap_before_border\": {}, \
         \"looped\": {}, \"duplicate\": {}, \"cbi_is_destination\": {}, \"cloud_reentry\": {}}},",
        atlas.pool.accepted,
        d.no_border,
        d.gap_before_border,
        d.looped,
        d.duplicate,
        d.cbi_is_destination,
        d.cloud_reentry
    );
    // The frozen registry, grouped by metric kind. Deterministic for a
    // fixed (scale, seed, faults) at any worker count, unlike the wall
    // clocks above.
    let mut counters: Vec<String> = Vec::new();
    let mut gauges: Vec<String> = Vec::new();
    let mut hists: Vec<String> = Vec::new();
    for (name, value) in &atlas.metrics.metrics {
        match value {
            cm_obs::MetricValue::Counter(c) => counters.push(format!("\"{name}\": {c}")),
            cm_obs::MetricValue::Gauge(g) => gauges.push(format!("\"{name}\": {g}")),
            cm_obs::MetricValue::Histogram(h) => {
                let buckets: Vec<String> = h.counts.iter().map(u64::to_string).collect();
                hists.push(format!(
                    "\"{name}\": {{\"count\": {}, \"overflow\": {}, \"rejected\": {}, \
                     \"buckets\": [{}]}}",
                    h.count(),
                    h.overflow,
                    h.rejected,
                    buckets.join(", ")
                ));
            }
        }
    }
    out.push_str("  \"metrics\": {\n");
    let _ = writeln!(out, "    \"counters\": {{{}}},", counters.join(", "));
    let _ = writeln!(out, "    \"gauges\": {{{}}},", gauges.join(", "));
    let _ = writeln!(out, "    \"histograms\": {{{}}}", hists.join(", "));
    out.push_str("  },\n");
    let stats_json = |s: &cm_probe::CampaignStats| {
        format!(
            "{{\"launched\": {}, \"completed\": {}, \"gap_limited\": {}, \"max_ttl\": {}}}",
            s.launched, s.completed, s.gap_limited, s.max_ttl
        )
    };
    let _ = writeln!(out, "  \"sweep\": {},", stats_json(&atlas.sweep_stats));
    match &atlas.expansion_stats {
        Some(s) => {
            let _ = writeln!(out, "  \"expansion\": {}", stats_json(s));
        }
        None => {
            let _ = writeln!(out, "  \"expansion\": null");
        }
    }
    out.push_str("}\n");
    out
}

/// Appends one run record to the `BENCH_pipeline.json` history and
/// returns the new file contents. The history is a top-level JSON array
/// of run records, newest last; `existing` is the current file contents
/// (or `None` when the file does not exist yet). Legacy files holding a
/// single bare record object are wrapped into a one-entry array before
/// the new record is appended, and unparseable contents are discarded in
/// favor of a fresh history rather than corrupting the file further.
pub fn append_bench_history(existing: Option<&str>, record: &str) -> String {
    let rec = record.trim();
    let fresh = || format!("[\n{rec}\n]\n");
    let Some(prev) = existing.map(str::trim).filter(|s| !s.is_empty()) else {
        return fresh();
    };
    if let Some(body) = prev.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let body = body.trim();
        if body.is_empty() {
            return fresh();
        }
        return format!("[\n{body},\n{rec}\n]\n");
    }
    if prev.starts_with('{') && prev.ends_with('}') {
        return format!("[\n{prev},\n{rec}\n]\n");
    }
    fresh()
}

/// One era of a `churn` campaign, for [`bench_churn_json`].
pub struct ChurnEraRecord {
    /// The era index (0-based).
    pub era: u32,
    /// Wall clock of the from-scratch pipeline run at this era.
    pub scratch_seconds: f64,
    /// Wall clock of the incremental `DeltaEngine::run_era` call.
    pub delta_seconds: f64,
    /// Probe groups the delta engine partitioned the era into.
    pub groups: u64,
    /// Groups actually re-probed (the dirty set); the rest were spliced
    /// from cache.
    pub synthesized: u64,
    /// The era's churn report as a compact JSON object (from
    /// `ChurnReport::to_jsonl`), absent for the first era.
    pub churn_json: Option<String>,
}

/// One machine-readable `churn` campaign record for the
/// `BENCH_pipeline.json` history: total scratch vs. delta wall clocks,
/// the speedup ratio the incremental engine buys, per-era dirty-set
/// sizes and churn reports. Like [`bench_pipeline_json`] this is
/// hand-rolled JSON with fixed keys; the embedded churn objects come
/// straight from the delta engine's own JSONL rendering. The non-empty
/// `fault_plan` keeps these records out of the CI perf gate's
/// clean-run diff.
#[allow(clippy::too_many_arguments)]
pub fn bench_churn_json(
    label: &str,
    scale: &str,
    seed: u64,
    workers: usize,
    axes: &[&str],
    scratch_seconds: f64,
    delta_seconds: f64,
    cache_hit_rate: f64,
    eras: &[ChurnEraRecord],
) -> String {
    let num = |x: f64| {
        if x.is_finite() {
            format!("{x:.6}")
        } else {
            "0.0".to_string()
        }
    };
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"label\": \"{label}\",");
    let _ = writeln!(out, "  \"kind\": \"churn\",");
    let _ = writeln!(out, "  \"scale\": \"{scale}\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"probe_workers\": {workers},");
    // `eras` carries the era-0 baseline plus one entry per churn epoch.
    let _ = writeln!(out, "  \"epochs\": {},", eras.len().saturating_sub(1));
    let quoted: Vec<String> = axes.iter().map(|a| format!("\"{a}\"")).collect();
    let _ = writeln!(out, "  \"fault_plan\": [{}],", quoted.join(", "));
    let _ = writeln!(out, "  \"scratch_seconds\": {},", num(scratch_seconds));
    let _ = writeln!(out, "  \"delta_seconds\": {},", num(delta_seconds));
    let _ = writeln!(
        out,
        "  \"speedup\": {},",
        num(scratch_seconds / delta_seconds)
    );
    let _ = writeln!(out, "  \"delta_cache_hit_rate\": {},", num(cache_hit_rate));
    out.push_str("  \"eras\": [\n");
    for (i, e) in eras.iter().enumerate() {
        let comma = if i + 1 == eras.len() { "" } else { "," };
        let churn = e.churn_json.as_deref().unwrap_or("null");
        let _ = writeln!(
            out,
            "    {{\"era\": {}, \"scratch_seconds\": {}, \"delta_seconds\": {}, \
             \"groups\": {}, \"synthesized\": {}, \"churn\": {churn}}}{comma}",
            e.era,
            num(e.scratch_seconds),
            num(e.delta_seconds),
            e.groups,
            e.synthesized
        );
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Extension (not a paper table): *where* the traffic goes hiding — per
/// metro, how many pinned CBIs belong to hidden peering groups vs. visible
/// ones. This is the geographic reading of the title question that the
/// paper's pinning + grouping machinery makes possible.
pub fn hiding_map(atlas: &Atlas<'_>) -> String {
    use std::collections::HashMap;
    let mut per_metro: HashMap<u16, (usize, usize)> = HashMap::new();
    // CBI → hidden? via its peer's group memberships containing the CBI.
    // Iterate peers in ASN order so the report is identical across runs.
    let mut peers: Vec<_> = atlas.groups.per_as.keys().copied().collect();
    peers.sort_unstable();
    for profile in peers.iter().map(|asn| &atlas.groups.per_as[asn]) {
        for (group, cbis) in &profile.cbis_by_group {
            for cbi in cbis {
                let Some(pin) = atlas.pinning.pins.get(cbi) else {
                    continue;
                };
                let e = per_metro.entry(pin.metro.0).or_insert((0, 0));
                if group.is_hidden() {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
    }
    let mut rows: Vec<(u16, (usize, usize))> = per_metro.into_iter().collect();
    rows.sort_by_key(|&(m, (h, v))| (std::cmp::Reverse(h + v), m));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension — where the traffic hides (top metros by pinned CBIs)"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>9} {:>8}",
        "metro", "hidden", "visible", "hidden%"
    );
    for (metro, (h, v)) in rows.into_iter().take(15) {
        let name = atlas.inet.metros.get(cm_geo::MetroId(metro)).name;
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>9} {:>7.0}%",
            name,
            h,
            v,
            100.0 * h as f64 / (h + v).max(1) as f64
        );
    }
    out
}

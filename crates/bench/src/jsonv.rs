//! A minimal JSON value parser for the harness's own machine-readable
//! artifacts (`BENCH_pipeline.json` histories, flight-recorder JSONL).
//!
//! The workspace is dependency-free by design, and until now every JSON
//! consumer was a Python one-liner in CI. The `trace-diff` localizer
//! needs to *read* those artifacts from Rust, so this module implements
//! the small recursive-descent parser the fixed formats require:
//! objects, arrays, strings (with the escapes [`crate::golden`] and
//! `cm-obs` emit), f64 numbers, booleans and null. Object members keep
//! their file order, so walking a parsed document is deterministic.
//!
//! The parser is hardened against hostile input (cm-lint's S-rules
//! treat it as an untrusted-input root): every slice access is
//! bounds-checked, and the descent depth is capped at [`MAX_DEPTH`] so
//! a file of ten thousand `[`s yields [`JsonError::TooDeep`] instead of
//! a stack overflow. Failures are the typed [`JsonError`]; it converts
//! into `String` so existing `Result<_, String>` plumbing keeps using
//! `?`.

use std::fmt;

/// Deepest object/array nesting the parser will follow. The harness's
/// own artifacts nest 4–5 levels; 128 leaves two orders of magnitude of
/// headroom while keeping worst-case stack use in the tens of
/// kilobytes.
pub const MAX_DEPTH: usize = 128;

/// Why a document failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonError {
    /// Nesting exceeded [`MAX_DEPTH`] — hostile or corrupt input, since
    /// no harness artifact nests remotely that deep.
    TooDeep {
        /// The enforced depth limit.
        limit: usize,
    },
    /// Malformed syntax, with a byte offset in the message.
    Syntax(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::TooDeep { limit } => {
                write!(f, "nesting deeper than {limit} levels")
            }
            JsonError::Syntax(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl From<JsonError> for String {
    fn from(e: JsonError) -> String {
        e.to_string()
    }
}

/// Shorthand for a syntax error.
fn syn(msg: String) -> JsonError {
    JsonError::Syntax(msg)
}

/// A parsed JSON value. Numbers are uniformly `f64` — every numeric
/// field the harness emits fits (the largest are span-cost counters,
/// well under 2^53).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// An object, members in file order.
    Object(Vec<(String, Json)>),
    /// An array.
    Array(Vec<Json>),
    /// A string (escapes resolved).
    Str(String),
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// The null literal.
    Null,
}

impl Json {
    /// Parses one complete JSON document; trailing whitespace is allowed,
    /// trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(syn(format!("trailing garbage at byte {pos}")));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's members in file order, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(syn(format!(
            "expected {:?} at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        )))
    }
}

// cm-lint: panic-safe(S5: the descent is bounded — every parse_value entry checks depth against MAX_DEPTH)
fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError::TooDeep { limit: MAX_DEPTH });
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err(syn("unexpected end of input".to_string())),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes
        .get(*pos..)
        .is_some_and(|rest| rest.starts_with(lit.as_bytes()))
    {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(syn(format!("invalid literal at byte {}", *pos)))
    }
}

// cm-lint: panic-safe(S5: recurses only through parse_value, whose depth check bounds the cycle)
fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            _ => return Err(syn(format!("expected ',' or '}}' at byte {}", *pos))),
        }
    }
}

// cm-lint: panic-safe(S5: recurses only through parse_value, whose depth check bounds the cycle)
fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(syn(format!("expected ',' or ']' at byte {}", *pos))),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(syn("unterminated string".to_string())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| syn(format!("bad \\u escape at byte {}", *pos)))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| syn(format!("bad \\u escape at byte {}", *pos)))?;
                        // Surrogate pairs do not occur in the harness's
                        // own output; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(syn(format!("bad escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let start = *pos;
                let mut end = *pos + 1;
                if b >= 0x80 {
                    while end < bytes.len() && bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                }
                match bytes.get(start..end).map(std::str::from_utf8) {
                    Some(Ok(s)) => out.push_str(s),
                    _ => return Err(syn(format!("invalid UTF-8 at byte {start}"))),
                }
                *pos = end;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = bytes
        .get(start..*pos)
        .and_then(|t| std::str::from_utf8(t).ok())
        .ok_or_else(|| syn(format!("invalid number at byte {start}")))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| syn(format!("invalid number {text:?} at byte {start}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_harness_shapes() {
        let doc = r#"[
  {"label": "tiny-2019-clean", "seed": 2019, "pipeline_seconds": 0.61,
   "stages": [{"name": "sweep", "seconds": 0.32}],
   "fault_plan": [], "ok": true, "missing": null}
]"#;
        let v = Json::parse(doc).unwrap();
        let records = v.as_array().unwrap();
        let r = &records[0];
        assert_eq!(r.get("label").unwrap().as_str(), Some("tiny-2019-clean"));
        assert_eq!(r.get("seed").unwrap().as_num(), Some(2019.0));
        let stages = r.get("stages").unwrap().as_array().unwrap();
        assert_eq!(stages[0].get("name").unwrap().as_str(), Some("sweep"));
        assert_eq!(r.get("fault_plan").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(r.get("ok").unwrap(), &Json::Bool(true));
        assert_eq!(r.get("missing").unwrap(), &Json::Null);
    }

    #[test]
    fn parses_jsonl_event_lines() {
        let line = r#"{"seq": 7, "event": "span_end", "path": "sweep;probe-round", "span_id": "0x00deadbeef00cafe", "costs": {"probes": 1200}, "nondeterministic": {"wall_ms": 3.25}}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("span_end"));
        assert_eq!(
            v.get("costs").unwrap().get("probes").unwrap().as_num(),
            Some(1200.0)
        );
        assert_eq!(
            v.get("nondeterministic")
                .unwrap()
                .get("wall_ms")
                .unwrap()
                .as_num(),
            Some(3.25)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn object_members_keep_file_order() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn deep_nesting_is_rejected_with_a_typed_error_not_a_stack_overflow() {
        for hostile in [
            "[".repeat(10_000),
            "{\"k\":".repeat(10_000),
            format!("{}1{}", "[".repeat(10_000), "]".repeat(10_000)),
        ] {
            assert_eq!(
                Json::parse(&hostile),
                Err(JsonError::TooDeep { limit: MAX_DEPTH })
            );
        }
    }

    #[test]
    fn modest_nesting_parses() {
        let doc = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        let v = Json::parse(&doc).unwrap();
        let mut cur = &v;
        let mut levels = 0;
        while let Some(items) = cur.as_array() {
            cur = &items[0];
            levels += 1;
        }
        assert_eq!(levels, 64);
        assert_eq!(cur.as_num(), Some(1.0));
    }

    #[test]
    fn too_deep_converts_into_the_string_error_space() {
        let hostile = "[".repeat(10_000);
        let as_string: String = Json::parse(&hostile).unwrap_err().into();
        assert!(as_string.contains("deeper than"), "{as_string}");
    }
}

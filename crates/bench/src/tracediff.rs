//! The trace-diff regression localizer.
//!
//! The CI perf gate used to say *that* tiny-scale wall clock regressed;
//! this module says *where*. It reduces a run to a [`SpanProfile`] — per
//! span path (the `;`-joined nesting chain the flight recorder emits,
//! e.g. `sweep;probe-round;region-2`), the aggregated inclusive and
//! *self* wall clock plus the deterministic cost counters — and diffs
//! two profiles into a deterministic localization report ranking span
//! paths by absolute self-time delta.
//!
//! Profiles come from three sources, all diffable against each other:
//!
//! 1. a live [`cm_obs::Event`] stream ([`profile_events`]);
//! 2. a flight-recorder JSONL trace rendered with the nondeterministic
//!    section included ([`profile_trace_jsonl`]);
//! 3. a `BENCH_pipeline.json` history record ([`profile_history_record`])
//!    — its `spans` section when present, its flat per-stage `stages`
//!    wall clocks otherwise (older records).
//!
//! Self time is settled exactly like [`cm_obs::collapsed_stacks`]: a
//! frame's inclusive value minus the sum of its children's inclusive
//! values, so nested spans never double-count. Wall clocks are
//! nondeterministic by nature — the *rendering* of the report is
//! deterministic for fixed inputs (every ranking uses `total_cmp` with a
//! path tie-break), which is what the CI artifact contract needs.

use crate::jsonv::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated statistics for one span path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PathStats {
    /// Spans closed at this path.
    pub count: u64,
    /// Summed inclusive wall clock (milliseconds).
    pub wall_ms: f64,
    /// Summed self wall clock: inclusive minus children (milliseconds).
    pub self_wall_ms: f64,
    /// Summed deterministic cost counters recorded on spans at this
    /// path, name-sorted.
    pub costs: Vec<(String, u64)>,
}

impl PathStats {
    fn add_cost(&mut self, name: &str, value: u64) {
        match self.costs.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.costs[i].1 += value,
            Err(i) => self.costs.insert(i, (name.to_string(), value)),
        }
    }

    /// The value of one cost counter (0 when absent).
    pub fn cost(&self, name: &str) -> u64 {
        self.costs
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.costs[i].1)
            .unwrap_or(0)
    }
}

/// One run reduced to its per-span-path profile.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanProfile {
    /// Label identifying the run (a history record label or a file name).
    pub label: String,
    /// Per-path statistics, path-sorted.
    pub paths: BTreeMap<String, PathStats>,
    /// Total wall clock (milliseconds): the run's end-to-end clock when
    /// the source carries one, else the sum of top-level inclusive
    /// walls.
    pub total_ms: f64,
}

impl SpanProfile {
    /// Renders the profile as collapsed flamegraph stacks (one
    /// `path value` line, lexicographic path order, zero lines dropped —
    /// inferno-compatible). `counter = None` values are self wall in
    /// whole microseconds; `Some(name)` values are that cost counter.
    pub fn collapsed(&self, counter: Option<&str>) -> String {
        let mut out = String::new();
        for (path, stats) in &self.paths {
            let value = match counter {
                None => (stats.self_wall_ms * 1000.0).max(0.0).round() as u64,
                Some(name) => stats.cost(name),
            };
            if value > 0 {
                let _ = writeln!(out, "{path} {value}");
            }
        }
        out
    }
}

/// One closing frame fed to the shared profile fold.
struct Close {
    wall_ms: f64,
    costs: Vec<(String, u64)>,
}

/// The shared stack replay: builds a [`SpanProfile`] from an ordered
/// open/close sequence, settling self time the collapsed-stack way.
#[derive(Default)]
struct Builder {
    stack: Vec<(String, f64)>,
    paths: BTreeMap<String, PathStats>,
    top_level_ms: f64,
}

impl Builder {
    fn open(&mut self, name: &str) {
        self.stack.push((name.to_string(), 0.0));
    }

    fn close(&mut self, close: Close) {
        let Some((name, child_sum)) = self.stack.pop() else {
            // An unbalanced trace (truncated file): ignore the stray
            // close rather than corrupting the profile.
            return;
        };
        let path = {
            let mut p = String::new();
            for (frame, _) in &self.stack {
                p.push_str(frame);
                p.push(';');
            }
            p.push_str(&name);
            p
        };
        // A frame whose own wall is missing (executor region spans carry
        // only cost counters) still propagates its children's sum.
        let inclusive = close.wall_ms.max(child_sum);
        match self.stack.last_mut() {
            Some((_, parent_children)) => *parent_children += inclusive,
            None => self.top_level_ms += inclusive,
        }
        let stats = self.paths.entry(path).or_default();
        stats.count += 1;
        stats.wall_ms += inclusive;
        stats.self_wall_ms += inclusive - child_sum;
        for (cost, value) in &close.costs {
            stats.add_cost(cost, *value);
        }
    }

    fn finish(self, label: &str, total_ms: Option<f64>) -> SpanProfile {
        SpanProfile {
            label: label.to_string(),
            total_ms: total_ms.unwrap_or(self.top_level_ms),
            paths: self.paths,
        }
    }
}

/// Profiles a live flight-recorder stream.
pub fn profile_events(label: &str, events: &[cm_obs::Event]) -> SpanProfile {
    let mut b = Builder::default();
    for event in events {
        match &event.kind {
            cm_obs::EventKind::StageStart { stage } => b.open(stage),
            cm_obs::EventKind::SpanStart { path, .. } => {
                b.open(path.rsplit(';').next().unwrap_or(path));
            }
            cm_obs::EventKind::StageEnd { .. } | cm_obs::EventKind::SpanEnd { .. } => {
                let costs = match &event.kind {
                    cm_obs::EventKind::SpanEnd { costs, .. } => {
                        costs.iter().map(|(n, v)| ((*n).to_string(), *v)).collect()
                    }
                    _ => Vec::new(),
                };
                b.close(Close {
                    wall_ms: event.wall_ms.unwrap_or(0.0),
                    costs,
                });
            }
            cm_obs::EventKind::CounterSnapshot { .. } | cm_obs::EventKind::Note { .. } => {}
        }
    }
    b.finish(label, None)
}

/// Profiles a flight-recorder JSONL trace (as written by
/// `experiments --trace-jsonl`, i.e. rendered *with* the
/// nondeterministic section so wall clocks are available).
pub fn profile_trace_jsonl(label: &str, jsonl: &str) -> Result<SpanProfile, String> {
    let mut b = Builder::default();
    for (lineno, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let event = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: no event field", lineno + 1))?;
        match event {
            "stage_start" => {
                let stage = v
                    .get("stage")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: stage_start without stage", lineno + 1))?;
                b.open(stage);
            }
            "span_start" => {
                let path = v
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: span_start without path", lineno + 1))?;
                b.open(path.rsplit(';').next().unwrap_or(path));
            }
            "stage_end" | "span_end" => {
                let wall_ms = v
                    .get("nondeterministic")
                    .and_then(|n| n.get("wall_ms"))
                    .and_then(Json::as_num)
                    .unwrap_or(0.0);
                let mut costs = Vec::new();
                if let Some(members) = v.get("costs").and_then(Json::as_object) {
                    for (name, value) in members {
                        if let Some(n) = value.as_num() {
                            costs.push((name.clone(), n.max(0.0) as u64));
                        }
                    }
                }
                b.close(Close { wall_ms, costs });
            }
            _ => {}
        }
    }
    Ok(b.finish(label, None))
}

/// Profiles one `BENCH_pipeline.json` history record: its `spans`
/// section when present, else one flat path per `stages` entry. The
/// profile total is the record's `pipeline_seconds`.
pub fn profile_history_record(record: &Json) -> Result<SpanProfile, String> {
    let label = record
        .get("label")
        .and_then(Json::as_str)
        .unwrap_or("(unlabelled)");
    let total_ms = record
        .get("pipeline_seconds")
        .and_then(Json::as_num)
        .map(|s| s * 1000.0);
    let mut paths = BTreeMap::new();
    if let Some(spans) = record.get("spans").and_then(Json::as_array) {
        for span in spans {
            let path = span
                .get("path")
                .and_then(Json::as_str)
                .ok_or("spans entry without path")?;
            let mut stats = PathStats {
                count: span.get("count").and_then(Json::as_num).unwrap_or(1.0) as u64,
                wall_ms: span.get("wall_ms").and_then(Json::as_num).unwrap_or(0.0),
                self_wall_ms: span
                    .get("self_wall_ms")
                    .and_then(Json::as_num)
                    .unwrap_or(0.0),
                costs: Vec::new(),
            };
            if let Some(members) = span.get("costs").and_then(Json::as_object) {
                for (name, value) in members {
                    if let Some(n) = value.as_num() {
                        stats.add_cost(name, n.max(0.0) as u64);
                    }
                }
            }
            paths.insert(path.to_string(), stats);
        }
    } else if let Some(stages) = record.get("stages").and_then(Json::as_array) {
        for stage in stages {
            let name = stage
                .get("name")
                .and_then(Json::as_str)
                .ok_or("stages entry without name")?;
            let ms = stage.get("seconds").and_then(Json::as_num).unwrap_or(0.0) * 1000.0;
            paths.insert(
                name.to_string(),
                PathStats {
                    count: 1,
                    wall_ms: ms,
                    self_wall_ms: ms,
                    costs: Vec::new(),
                },
            );
        }
    } else {
        return Err(format!("record {label:?} has neither spans nor stages"));
    }
    Ok(SpanProfile {
        label: label.to_string(),
        paths,
        total_ms: total_ms.unwrap_or(0.0),
    })
}

/// Parses a `BENCH_pipeline.json` history and returns the profiles of
/// the two newest comparable pipeline records: same `scale` (when
/// given), clean fault plan, not a churn record. The returned pair is
/// `(baseline, newest)`.
pub fn history_profiles(
    history: &str,
    scale: Option<&str>,
) -> Result<(SpanProfile, SpanProfile), String> {
    let doc = Json::parse(history)?;
    let records = doc.as_array().ok_or("history is not a JSON array")?;
    let comparable: Vec<&Json> = records
        .iter()
        .filter(|r| {
            let clean = r
                .get("fault_plan")
                .and_then(Json::as_array)
                .is_some_and(|a| a.is_empty());
            let not_churn = r.get("kind").and_then(Json::as_str) != Some("churn");
            let scale_ok = match scale {
                Some(s) => r.get("scale").and_then(Json::as_str) == Some(s),
                None => true,
            };
            clean && not_churn && scale_ok
        })
        .collect();
    if comparable.len() < 2 {
        return Err(format!(
            "need at least two comparable records, found {}",
            comparable.len()
        ));
    }
    let base = profile_history_record(comparable[comparable.len() - 2])?;
    let new = profile_history_record(comparable[comparable.len() - 1])?;
    Ok((base, new))
}

/// One span path's delta between two profiles.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// The span path.
    pub path: String,
    /// Baseline self wall (milliseconds).
    pub base_ms: f64,
    /// New self wall (milliseconds).
    pub new_ms: f64,
    /// `new_ms - base_ms`.
    pub delta_ms: f64,
    /// Per-cost-counter deltas (new minus base), name-sorted; only
    /// counters whose delta is nonzero.
    pub cost_deltas: Vec<(String, i64)>,
}

/// A full localization diff between two profiles.
#[derive(Clone, Debug)]
pub struct TraceDiff {
    /// The baseline profile's label.
    pub base_label: String,
    /// The new profile's label.
    pub new_label: String,
    /// Baseline total wall (milliseconds).
    pub base_total_ms: f64,
    /// New total wall (milliseconds).
    pub new_total_ms: f64,
    /// Every path present in either profile, ranked by `delta_ms`
    /// descending (ties broken by path), so `rows[0]` is the single
    /// most-regressed span path.
    pub rows: Vec<DiffRow>,
}

impl TraceDiff {
    /// `new_total / base_total`; infinity when the baseline total is 0.
    pub fn total_ratio(&self) -> f64 {
        if self.base_total_ms > 0.0 {
            self.new_total_ms / self.base_total_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Diffs two profiles into a ranked localization.
pub fn diff(base: &SpanProfile, new: &SpanProfile) -> TraceDiff {
    let empty = PathStats::default();
    let mut rows = Vec::new();
    let mut all_paths: Vec<&String> = base.paths.keys().chain(new.paths.keys()).collect();
    all_paths.sort();
    all_paths.dedup();
    for path in all_paths {
        let b = base.paths.get(path).unwrap_or(&empty);
        let n = new.paths.get(path).unwrap_or(&empty);
        let mut cost_names: Vec<&String> = b
            .costs
            .iter()
            .map(|(c, _)| c)
            .chain(n.costs.iter().map(|(c, _)| c))
            .collect();
        cost_names.sort();
        cost_names.dedup();
        let cost_deltas: Vec<(String, i64)> = cost_names
            .into_iter()
            .filter_map(|c| {
                let d = n.cost(c) as i64 - b.cost(c) as i64;
                (d != 0).then(|| (c.clone(), d))
            })
            .collect();
        rows.push(DiffRow {
            path: path.clone(),
            base_ms: b.self_wall_ms,
            new_ms: n.self_wall_ms,
            delta_ms: n.self_wall_ms - b.self_wall_ms,
            cost_deltas,
        });
    }
    rows.sort_by(|a, b| {
        b.delta_ms
            .total_cmp(&a.delta_ms)
            .then_with(|| a.path.cmp(&b.path))
    });
    TraceDiff {
        base_label: base.label.clone(),
        new_label: new.label.clone(),
        base_total_ms: base.total_ms,
        new_total_ms: new.total_ms,
        rows,
    }
}

/// Renders the localization report: the end-to-end ratio, then the top
/// `top` regressed span paths (and the top improvements), each with its
/// self-time delta and any deterministic cost-counter drift.
/// Deterministic for fixed inputs — the CI artifact contract.
pub fn render_report(d: &TraceDiff, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace-diff: {} -> {}", d.base_label, d.new_label);
    let _ = writeln!(
        out,
        "total: {:.3}ms -> {:.3}ms (x{:.3})",
        d.base_total_ms,
        d.new_total_ms,
        d.total_ratio()
    );
    let fmt_row = |out: &mut String, r: &DiffRow| {
        let ratio = if r.base_ms > 0.0 {
            format!("x{:.2}", r.new_ms / r.base_ms)
        } else {
            "new".to_string()
        };
        let _ = write!(
            out,
            "  {:+10.3}ms  {:>8}  {}  ({:.3}ms -> {:.3}ms)",
            r.delta_ms, ratio, r.path, r.base_ms, r.new_ms
        );
        if !r.cost_deltas.is_empty() {
            let costs: Vec<String> = r
                .cost_deltas
                .iter()
                .map(|(name, delta)| format!("{name} {delta:+}"))
                .collect();
            let _ = write!(out, "  [{}]", costs.join(", "));
        }
        out.push('\n');
    };
    let _ = writeln!(out, "top regressed span paths:");
    let mut shown = 0usize;
    for r in &d.rows {
        if r.delta_ms <= 0.0 || shown == top {
            break;
        }
        fmt_row(&mut out, r);
        shown += 1;
    }
    if shown == 0 {
        let _ = writeln!(out, "  (none)");
    }
    let _ = writeln!(out, "top improved span paths:");
    let mut shown = 0usize;
    for r in d.rows.iter().rev() {
        if r.delta_ms >= 0.0 || shown == top {
            break;
        }
        fmt_row(&mut out, r);
        shown += 1;
    }
    if shown == 0 {
        let _ = writeln!(out, "  (none)");
    }
    out
}

/// Serializes a profile's per-path statistics as the `spans` section of
/// a `BENCH_pipeline.json` record: a JSON array, path-sorted, each entry
/// carrying the path, occurrence count, inclusive + self wall and the
/// deterministic cost counters. `indent` is prepended to each entry
/// line.
pub fn spans_json(profile: &SpanProfile, indent: &str) -> String {
    let num = |x: f64| {
        if x.is_finite() {
            format!("{x:.6}")
        } else {
            "0.0".to_string()
        }
    };
    let mut out = String::from("[\n");
    let n = profile.paths.len();
    for (i, (path, stats)) in profile.paths.iter().enumerate() {
        let comma = if i + 1 == n { "" } else { "," };
        let costs: Vec<String> = stats
            .costs
            .iter()
            .map(|(name, v)| format!("\"{name}\": {v}"))
            .collect();
        let _ = writeln!(
            out,
            "{indent}  {{\"path\": \"{path}\", \"count\": {}, \"wall_ms\": {}, \
             \"self_wall_ms\": {}, \"costs\": {{{}}}}}{comma}",
            stats.count,
            num(stats.wall_ms),
            num(stats.self_wall_ms),
            costs.join(", ")
        );
    }
    let _ = write!(out, "{indent}]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_obs::Recorder;

    /// A pipeline-shaped recorder: two stages with nested spans; the
    /// expansion probe-round takes `probe_ms`.
    fn run(probe_ms: f64) -> Vec<cm_obs::Event> {
        let rec = Recorder::new();
        rec.stage_start("sweep");
        rec.span_start("probe-round");
        rec.span_end("probe-round", Some(40.0), vec![("probes", 1000)]);
        rec.stage_end("sweep", 50.0, Vec::new(), Vec::new());
        rec.stage_start("expansion");
        rec.span_start("probe-round");
        rec.span_end("probe-round", Some(probe_ms), vec![("probes", 500)]);
        rec.span_start("merge");
        rec.span_end("merge", Some(5.0), vec![("pool_merges", 1)]);
        rec.stage_end("expansion", probe_ms + 10.0, Vec::new(), Vec::new());
        rec.events()
    }

    #[test]
    fn profiles_settle_self_time_without_double_counting() {
        let p = profile_events("a", &run(30.0));
        let sweep = &p.paths["sweep"];
        assert_eq!(sweep.self_wall_ms, 10.0); // 50 - 40 child
        assert_eq!(sweep.wall_ms, 50.0);
        let probe = &p.paths["expansion;probe-round"];
        assert_eq!(probe.self_wall_ms, 30.0);
        assert_eq!(probe.cost("probes"), 500);
        // Total is the sum of top-level inclusive walls.
        assert_eq!(p.total_ms, 50.0 + 40.0);
    }

    #[test]
    fn jsonl_round_trip_matches_the_event_profile() {
        let events = run(30.0);
        let direct = profile_events("x", &events);
        let jsonl = cm_obs::render_jsonl(&events, true);
        let parsed = profile_trace_jsonl("x", &jsonl).unwrap();
        assert_eq!(direct, parsed);
    }

    /// The acceptance scenario: a run whose expansion probe-round is
    /// artificially slowed must be localized to exactly that span path.
    #[test]
    fn slowed_expansion_sub_stage_is_the_top_regression() {
        let base = profile_events("base", &run(30.0));
        let slow = profile_events("slow", &run(300.0));
        let d = diff(&base, &slow);
        assert_eq!(d.rows[0].path, "expansion;probe-round");
        assert_eq!(d.rows[0].delta_ms, 270.0);
        let report = render_report(&d, 5);
        assert!(report.contains("top regressed span paths:"));
        let top_line = report
            .lines()
            .skip_while(|l| !l.starts_with("top regressed"))
            .nth(1)
            .unwrap();
        assert!(
            top_line.contains("expansion;probe-round"),
            "top line: {top_line}"
        );
    }

    #[test]
    fn cost_deltas_rank_and_render() {
        let base = profile_events("base", &run(30.0));
        let mut bumped = run(90.0);
        // Forge 200 extra probes on the (now slower) expansion round —
        // the report must attribute the wall regression to the cost
        // drift on that span path.
        for ev in &mut bumped {
            if let cm_obs::EventKind::SpanEnd { path, costs, .. } = &mut ev.kind {
                if path == "expansion;probe-round" {
                    costs[0].1 += 200;
                }
            }
        }
        let new = profile_events("new", &bumped);
        let d = diff(&base, &new);
        let row = d
            .rows
            .iter()
            .find(|r| r.path == "expansion;probe-round")
            .unwrap();
        assert_eq!(row.cost_deltas, vec![("probes".to_string(), 200)]);
        assert!(render_report(&d, 5).contains("probes +200"));
    }

    #[test]
    fn history_records_profile_spans_or_fall_back_to_stages() {
        let with_spans = Json::parse(
            r#"{"label": "new", "pipeline_seconds": 0.5,
                "spans": [{"path": "sweep;probe-round", "count": 1,
                           "wall_ms": 40.0, "self_wall_ms": 40.0,
                           "costs": {"probes": 1000}}]}"#,
        )
        .unwrap();
        let p = profile_history_record(&with_spans).unwrap();
        assert_eq!(p.total_ms, 500.0);
        assert_eq!(p.paths["sweep;probe-round"].cost("probes"), 1000);

        let flat = Json::parse(
            r#"{"label": "old", "pipeline_seconds": 0.4,
                "stages": [{"name": "sweep", "seconds": 0.3}]}"#,
        )
        .unwrap();
        let p = profile_history_record(&flat).unwrap();
        assert_eq!(p.paths["sweep"].self_wall_ms, 300.0);
    }

    #[test]
    fn history_pair_skips_churn_faulted_and_other_scales() {
        let history = r#"[
          {"label": "small", "scale": "small", "fault_plan": [],
           "pipeline_seconds": 9.0, "stages": [{"name": "sweep", "seconds": 5.0}]},
          {"label": "a", "scale": "tiny", "fault_plan": [],
           "pipeline_seconds": 1.0, "stages": [{"name": "sweep", "seconds": 0.6}]},
          {"label": "faulted", "scale": "tiny", "fault_plan": ["burst_loss"],
           "pipeline_seconds": 2.0, "stages": [{"name": "sweep", "seconds": 1.5}]},
          {"label": "churny", "scale": "tiny", "kind": "churn", "fault_plan": [],
           "pipeline_seconds": 3.0, "stages": [{"name": "sweep", "seconds": 2.5}]},
          {"label": "b", "scale": "tiny", "fault_plan": [],
           "pipeline_seconds": 1.2, "stages": [{"name": "sweep", "seconds": 0.8}]}
        ]"#;
        let (base, new) = history_profiles(history, Some("tiny")).unwrap();
        assert_eq!(base.label, "a");
        assert_eq!(new.label, "b");
        assert!(history_profiles(history, Some("full")).is_err());
    }

    #[test]
    fn spans_json_round_trips_through_the_record_parser() {
        let p = profile_events("roundtrip", &run(30.0));
        let record = format!(
            "{{\"label\": \"roundtrip\", \"pipeline_seconds\": {}, \"spans\": {}}}",
            p.total_ms / 1000.0,
            spans_json(&p, "  ")
        );
        let parsed = profile_history_record(&Json::parse(&record).unwrap()).unwrap();
        assert_eq!(parsed.paths, p.paths);
        assert!((parsed.total_ms - p.total_ms).abs() < 1e-6);
    }

    #[test]
    fn collapsed_output_is_sorted_and_skips_zero() {
        let p = profile_events("c", &run(30.0));
        let wall = p.collapsed(None);
        let lines: Vec<&str> = wall.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "collapsed stacks must be path-sorted");
        assert!(wall.contains("expansion;probe-round 30000"));
        let probes = p.collapsed(Some("probes"));
        assert_eq!(
            probes,
            "expansion;probe-round 500\nsweep;probe-round 1000\n"
        );
    }
}

//! `cm-serve` integration: cutting snapshots from finished atlases and
//! hammering the query engine with a seeded load generator.
//!
//! The split of responsibilities: `cm-serve` knows nothing about the
//! pipeline (it loads bytes and answers queries); this module is the
//! bridge that turns an [`Atlas`] into an [`AtlasSnapshot`] — stamping
//! the `AtlasSummary` schema version and golden digest into the header —
//! and the load generator the `serve-spammer` binary and the CI `serve`
//! job drive.

use crate::golden::AtlasSummary;
use crate::SUMMARY_VERSION;
use cloudmap::export::{serve_export, IfaceExport};
use cloudmap::pipeline::Atlas;
use cm_net::{stablehash, Ipv4};
use cm_serve::{AtlasSnapshot, Engine, IfaceRecord, QueryKind};
use std::fmt::Write as _;
use std::time::Instant;

/// Cuts a serving snapshot from a finished atlas.
///
/// The header carries [`SUMMARY_VERSION`] and `AtlasSummary::digest()`
/// of this exact run, so any loaded snapshot can be traced back to the
/// golden atlas it was cut from. Byte-deterministic for a fixed
/// `(scale, seed, faults)` at any worker count: the export lists are
/// canonically sorted and the encoding has no timestamps.
pub fn snapshot_of(atlas: &Atlas<'_>) -> AtlasSnapshot {
    let export = serve_export(atlas);
    AtlasSnapshot {
        summary_version: SUMMARY_VERSION,
        golden_digest: AtlasSummary::of(atlas).digest(),
        interfaces: export.interfaces.iter().map(to_record).collect(),
        prefixes: export.prefixes,
        segments: export.segments,
    }
}

fn to_record(e: &IfaceExport) -> IfaceRecord {
    IfaceRecord {
        addr: e.addr,
        is_cbi: e.is_cbi,
        owner: e.owner,
        metro_pin: e.metro_pin,
        region_pin: e.region_pin,
        groups: e.groups,
        vpi: e.vpi,
    }
}

/// Latency is sampled every this many operations — timing every single
/// lookup would spend more wall clock in `Instant::now` than in the
/// engine at tiny scale.
pub const LATENCY_SAMPLE_EVERY: usize = 16;

/// What one spam round measured.
pub struct SpamReport {
    /// Worker threads driven.
    pub threads: usize,
    /// Operations issued per thread.
    pub ops_per_thread: usize,
    /// Wall-clock seconds for the whole round.
    pub wall_secs: f64,
    /// Queries issued per kind, [`QueryKind::ALL`] order.
    pub kind_counts: [u64; 3],
    /// Queries that found something (a record, a prefix, a non-empty
    /// neighbor list).
    pub hits: u64,
    /// Order-independent fold of every answer — pins the workload to the
    /// engine's behavior (same seed + same snapshot ⇒ same checksum) and
    /// keeps the optimizer from eliding the lookups.
    pub checksum: u64,
    /// Sampled per-query latencies in nanoseconds, ascending.
    pub latencies_ns: Vec<f64>,
}

impl SpamReport {
    /// Total operations across all threads.
    pub fn total_ops(&self) -> u64 {
        (self.threads * self.ops_per_thread) as u64
    }

    /// Aggregate throughput in lookups per second.
    pub fn lookups_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.total_ops() as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// One worker's seeded query stream against the engine.
///
/// Returns `(kind counts, hits, checksum, sampled latencies)`. The
/// stream derives entirely from `(seed, worker, i)` through the
/// workspace's stable hash, so reruns issue identical queries: roughly
/// half point lookups, 40% longest-prefix queries, 10% neighborhood
/// scans, with ~¾ of targets drawn from the snapshot (hits) and the
/// rest random 32-bit addresses (mostly misses).
fn spam_worker(
    engine: &Engine,
    seed: u64,
    worker: usize,
    ops: usize,
    record: bool,
) -> WorkerResult {
    let n_ifaces = engine.interface_count();
    let mut counts = [0u64; 3];
    let mut hits = 0u64;
    let mut checksum = 0u64;
    let mut latencies = Vec::with_capacity(ops / LATENCY_SAMPLE_EVERY + 1);
    for i in 0..ops {
        let h = stablehash::mix(seed, &[0x5BA7, worker as u64, i as u64]);
        let addr = if n_ifaces > 0 && !h.is_multiple_of(4) {
            // A known interface: exercises the hit path.
            engine.records()[stablehash::pick(h, &[1], n_ifaces)].addr
        } else {
            // A random address: mostly misses, some LPM-only hits.
            Ipv4((h >> 32) as u32)
        };
        let kind = match h % 10 {
            0..=4 => QueryKind::Point,
            5..=8 => QueryKind::LongestPrefix,
            _ => QueryKind::Neighbors,
        };
        let sampled = record && i % LATENCY_SAMPLE_EVERY == 0;
        let start = if sampled { Some(Instant::now()) } else { None };
        let answer: u64 = match kind {
            QueryKind::Point => match engine.point(addr) {
                Some(r) => {
                    hits += 1;
                    u64::from(r.owner.0) | (u64::from(r.groups) << 32)
                }
                None => 0,
            },
            QueryKind::LongestPrefix => match engine.longest_prefix(addr) {
                Some((p, asn)) => {
                    hits += 1;
                    u64::from(p.base().to_u32()) | (u64::from(asn.0) << 32)
                }
                None => 0,
            },
            QueryKind::Neighbors => {
                let nbrs = engine.neighbors(addr);
                if !nbrs.is_empty() {
                    hits += 1;
                }
                nbrs.iter().map(|n| u64::from(n.to_u32())).sum()
            }
        };
        if let Some(t) = start {
            let ns = t.elapsed().as_nanos() as f64;
            // Sampled latencies also feed the shard's rolling quantile
            // window and its sampled query spans — one lock every
            // LATENCY_SAMPLE_EVERY ops, off the hot path.
            engine.shard(worker).observe_latency(kind, ns);
            latencies.push(ns);
        }
        counts[kind as usize] += 1;
        checksum = checksum.wrapping_add(stablehash::mix(answer, &[h]));
    }
    // Bulk-record into this worker's shard after the hot loop: the loop
    // itself never touches the registry mutex.
    if record {
        let shard = engine.shard(worker);
        for (kind, n) in QueryKind::ALL.iter().zip(counts) {
            shard.registry.inc(kind.counter(), n);
        }
        for &ns in &latencies {
            shard
                .registry
                .observe(cm_serve::engine::LATENCY_HISTOGRAM, ns);
        }
    }
    WorkerResult {
        counts,
        hits,
        checksum,
        latencies,
    }
}

struct WorkerResult {
    counts: [u64; 3],
    hits: u64,
    checksum: u64,
    latencies: Vec<f64>,
}

/// Drives `threads` workers, each issuing `ops_per_thread` seeded
/// queries against `engine`, and aggregates the round.
///
/// The query *stream* is deterministic (so `checksum` is reproducible);
/// the wall clocks and latency samples are not, and land only in the
/// report, never in any golden digest.
pub fn spam(engine: &Engine, seed: u64, threads: usize, ops_per_thread: usize) -> SpamReport {
    let threads = threads.max(1);
    let start = Instant::now();
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| scope.spawn(move || spam_worker(engine, seed, w, ops_per_thread, true)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => panic!("spam worker panicked"),
            })
            .collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();
    let mut kind_counts = [0u64; 3];
    let mut hits = 0u64;
    let mut checksum = 0u64;
    let mut latencies_ns = Vec::new();
    for r in results {
        for (sum, n) in kind_counts.iter_mut().zip(r.counts) {
            *sum += n;
        }
        hits += r.hits;
        // Workers are independent streams; summing keeps the fold
        // order-independent across join order.
        checksum = checksum.wrapping_add(r.checksum);
        latencies_ns.extend(r.latencies);
    }
    let latencies_ns = crate::sorted(&latencies_ns);
    SpamReport {
        threads,
        ops_per_thread,
        wall_secs,
        kind_counts,
        hits,
        checksum,
        latencies_ns,
    }
}

/// Runs the identical seeded query stream without timing anything or
/// touching the shards — a warmup round that faults in the engine's
/// indexes and warms branch predictors and caches before the measured
/// round samples latencies. Returns the answer checksum, which must
/// equal the measured round's for the same `(seed, threads, ops)` (the
/// stream is a pure function of those), so callers can assert the
/// warmup exercised the exact workload it warmed up for.
pub fn warmup(engine: &Engine, seed: u64, threads: usize, ops_per_thread: usize) -> u64 {
    let threads = threads.max(1);
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| scope.spawn(move || spam_worker(engine, seed, w, ops_per_thread, false)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => panic!("warmup worker panicked"),
            })
            .collect()
    });
    results
        .iter()
        .fold(0u64, |sum, r| sum.wrapping_add(r.checksum))
}

/// One machine-readable run record for the `BENCH_serve.json` history:
/// the snapshot's provenance and table sizes, the aggregate throughput,
/// and the sampled latency quantiles (via the interpolating
/// [`crate::quantile`], so p99/p999 do not collapse to the maximum on
/// small sample counts). Hand-rolled JSON like the pipeline record;
/// appended with [`crate::report::append_bench_history`].
pub fn bench_serve_json(
    label: &str,
    scale: &str,
    seed: u64,
    snapshot: &AtlasSnapshot,
    encoded_bytes: usize,
    warmup_ops: u64,
    report: &SpamReport,
) -> String {
    let num = |x: f64| {
        if x.is_finite() {
            format!("{x:.1}")
        } else {
            "0.0".to_string()
        }
    };
    let q = |p: f64| num(crate::quantile(&report.latencies_ns, p));
    let max = report.latencies_ns.last().copied().unwrap_or(f64::NAN);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"label\": \"{label}\",");
    let _ = writeln!(out, "  \"scale\": \"{scale}\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(
        out,
        "  \"snapshot\": {{\"bytes\": {}, \"interfaces\": {}, \"prefixes\": {}, \
         \"segments\": {}, \"summary_version\": {}, \"golden_digest\": \"{:#018x}\"}},",
        encoded_bytes,
        snapshot.interfaces.len(),
        snapshot.prefixes.len(),
        snapshot.segments.len(),
        snapshot.summary_version,
        snapshot.golden_digest
    );
    let _ = writeln!(out, "  \"threads\": {},", report.threads);
    let _ = writeln!(out, "  \"warmup_ops\": {warmup_ops},");
    let _ = writeln!(out, "  \"ops_per_thread\": {},", report.ops_per_thread);
    let _ = writeln!(out, "  \"total_ops\": {},", report.total_ops());
    let _ = writeln!(out, "  \"wall_seconds\": {:.6},", report.wall_secs);
    let _ = writeln!(
        out,
        "  \"lookups_per_sec\": {},",
        num(report.lookups_per_sec())
    );
    let _ = writeln!(
        out,
        "  \"mix\": {{\"point\": {}, \"longest_prefix\": {}, \"neighbors\": {}, \
         \"hits\": {}, \"checksum\": \"{:#018x}\"}},",
        report.kind_counts[0],
        report.kind_counts[1],
        report.kind_counts[2],
        report.hits,
        report.checksum
    );
    let _ = writeln!(
        out,
        "  \"latency_ns\": {{\"samples\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \
         \"max\": {}}}",
        report.latencies_ns.len(),
        q(0.50),
        q(0.99),
        q(0.999),
        num(max)
    );
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_engine() -> Engine {
        let inet = crate::build_internet("tiny", 2019);
        let atlas = crate::run_study(&inet);
        Engine::build(&snapshot_of(&atlas), 2)
    }

    #[test]
    fn spam_checksum_is_reproducible_and_wall_clock_free() {
        let engine = tiny_engine();
        let a = spam(&engine, 7, 2, 500);
        let b = spam(&engine, 7, 2, 500);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.kind_counts, b.kind_counts);
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.total_ops(), 1000);
        // A different seed issues a different stream.
        let c = spam(&engine, 8, 2, 500);
        assert_ne!(a.checksum, c.checksum);
    }

    #[test]
    fn warmup_answers_the_measured_stream_without_recording() {
        let engine = tiny_engine();
        let warm = warmup(&engine, 7, 2, 500);
        let before = engine.merged_metrics();
        for kind in QueryKind::ALL {
            assert_eq!(before.counter(kind.counter()), Some(0), "warmup recorded");
        }
        assert!(
            engine.latency_quantile(0.5).is_none(),
            "warmup fed the sketch"
        );
        let round = spam(&engine, 7, 2, 500);
        assert_eq!(warm, round.checksum, "warmup ran a different stream");
        assert!(engine.latency_quantile(0.5).is_some());
    }

    #[test]
    fn serve_json_record_appends_into_history() {
        let engine = tiny_engine();
        let snap = snapshot_of(&crate::run_study(&crate::build_internet("tiny", 2019)));
        let report = spam(&engine, 7, 1, 200);
        let rec = bench_serve_json(
            "test",
            "tiny",
            2019,
            &snap,
            snap.encode().len(),
            100,
            &report,
        );
        for key in [
            "\"lookups_per_sec\"",
            "\"p999\"",
            "\"warmup_ops\": 100",
            "\"checksum\"",
            "\"golden_digest\"",
        ] {
            assert!(rec.contains(key), "missing {key} in {rec}");
        }
        let history = crate::report::append_bench_history(None, &rec);
        let twice = crate::report::append_bench_history(Some(&history), &rec);
        assert!(twice.starts_with("[\n{"));
        assert_eq!(twice.matches("\"label\": \"test\"").count(), 2);
    }
}

//! Golden-atlas differential testing.
//!
//! A fault profile must *perturb* the pipeline, not silently *rewrite* it:
//! the same code on the same seed must infer the same atlas today and next
//! month, clean or faulted. This module reduces an [`Atlas`] to an
//! [`AtlasSummary`] — every inference product that matters, in canonical
//! order, with a stable digest — and renders a clean-vs-faulted
//! [`GoldenDiff`] into a small text *golden file*. The `golden` binary
//! (`cargo run --release -p cm-bench --bin golden`) regenerates those
//! files and `check`s them in CI; a code change that shifts any inference
//! result under any registered [`FaultPlan`] profile turns up as a textual
//! diff against `crates/bench/golden/`, not as a mystery three PRs later.

use cloudmap::pipeline::{Atlas, Pipeline, PipelineConfig};
use cm_dataplane::{DataPlaneConfig, FaultImpact, FaultPlan};
use cm_net::{stablehash, Ipv4};
use cm_topology::Internet;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// A pipeline configuration carrying a fault plan and a worker count,
/// otherwise default. Every golden run goes through this one constructor
/// so clean and faulted campaigns differ in nothing else.
pub fn study_config(faults: FaultPlan, probe_workers: usize) -> PipelineConfig {
    PipelineConfig {
        dataplane: DataPlaneConfig {
            faults,
            ..DataPlaneConfig::default()
        },
        probe_workers,
        ..PipelineConfig::default()
    }
}

/// Runs the full pipeline under `cfg`.
///
/// # Panics
/// On a degenerate Internet or an invalid configuration, like
/// [`crate::run_study`].
pub fn run_study_with(inet: &Internet, cfg: PipelineConfig) -> Atlas<'_> {
    match Pipeline::new(inet, cfg).run() {
        Ok(atlas) => atlas,
        Err(e) => panic!("pipeline failed on generated Internet: {e}"),
    }
}

/// Version of the [`AtlasSummary`] schema. Bump this when the summary
/// gains or loses a field (it feeds the digest), so committed goldens are
/// invalidated *visibly* — the rendered `version:` line changes — and get
/// regenerated once instead of silently drifting.
pub const SUMMARY_VERSION: u32 = 2;

/// The inference products of one pipeline run, in canonical order.
///
/// Two runs of the same (world seed, configuration) must produce equal
/// summaries — at any `probe_workers` — so the summary, not the raw atlas,
/// is what golden files digest and diff.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AtlasSummary {
    /// Schema version ([`SUMMARY_VERSION`] for summaries built by
    /// [`AtlasSummary::of`]; 0 for `default()`).
    pub version: u32,
    /// Digest of the frozen metrics registry's text exposition
    /// (`Atlas::metrics`), folded into [`AtlasSummary::digest`] so a
    /// metric that silently drifts or goes worker-dependent moves the
    /// golden too.
    pub metrics_digest: u64,
    /// Final CBI set.
    pub cbis: BTreeSet<Ipv4>,
    /// Final ABI set.
    pub abis: BTreeSet<Ipv4>,
    /// Final `(abi, cbi)` segment set.
    pub segments: BTreeSet<(Ipv4, Ipv4)>,
    /// Metro pins: address → (metro, evidence-source name).
    pub pins: BTreeMap<Ipv4, (u16, &'static str)>,
    /// Regional fallback pins: address → region.
    pub region_pins: BTreeMap<Ipv4, u32>,
    /// §7.1 VPI-classified CBIs.
    pub vpi_cbis: BTreeSet<Ipv4>,
    /// Table 1: interface count per row, resolution fractions as bits.
    pub table1: [(usize, u64, u64, u64); 4],
    /// §4.1 accepted traceroutes.
    pub accepted: usize,
    /// §4.1 filter counters, in a fixed order.
    pub discards: [(&'static str, usize); 6],
    /// Launched / completed / gap-limited / max-TTL across both rounds.
    pub campaign: [usize; 4],
    /// Total fault impact.
    pub fault_impact: FaultImpact,
}

impl AtlasSummary {
    /// Reduces an atlas to its canonical summary.
    pub fn of(atlas: &Atlas<'_>) -> AtlasSummary {
        let d = &atlas.pool.discards;
        let mut campaign = [
            atlas.sweep_stats.launched,
            atlas.sweep_stats.completed,
            atlas.sweep_stats.gap_limited,
            atlas.sweep_stats.max_ttl,
        ];
        if let Some(e) = &atlas.expansion_stats {
            campaign[0] += e.launched;
            campaign[1] += e.completed;
            campaign[2] += e.gap_limited;
            campaign[3] += e.max_ttl;
        }
        AtlasSummary {
            version: SUMMARY_VERSION,
            metrics_digest: metrics_digest(&atlas.metrics),
            cbis: atlas.pool.cbis.keys().copied().collect(),
            abis: atlas.pool.abis.keys().copied().collect(),
            segments: atlas.pool.segments.keys().map(|s| (s.abi, s.cbi)).collect(),
            pins: atlas
                .pinning
                .pins
                .iter()
                .map(|(&a, p)| (a, (p.metro.0, source_name(p.source))))
                .collect(),
            region_pins: atlas
                .pinning
                .region_pins
                .iter()
                .map(|(&a, r)| (a, r.0))
                .collect(),
            vpi_cbis: atlas.vpi.vpi_cbis.iter().copied().collect(),
            table1: atlas
                .table1
                .map(|r| (r.count, r.bgp.to_bits(), r.whois.to_bits(), r.ixp.to_bits())),
            accepted: atlas.pool.accepted,
            discards: [
                ("no_border", d.no_border),
                ("gap_before_border", d.gap_before_border),
                ("looped", d.looped),
                ("duplicate", d.duplicate),
                ("cbi_is_destination", d.cbi_is_destination),
                ("cloud_reentry", d.cloud_reentry),
            ],
            campaign,
            fault_impact: atlas.fault_impact,
        }
    }

    /// A stable digest: equal summaries ⇔ equal digests, and the chain is
    /// order-sensitive, so any inference shift moves it.
    pub fn digest(&self) -> u64 {
        let mut h = 0x0006_01DA_71A5_u64;
        let mut eat = |parts: &[u64]| h = stablehash::mix(h, parts);
        for &a in &self.cbis {
            eat(&[1, u64::from(a.0)]);
        }
        for &a in &self.abis {
            eat(&[2, u64::from(a.0)]);
        }
        for &(a, c) in &self.segments {
            eat(&[3, u64::from(a.0), u64::from(c.0)]);
        }
        for (&a, &(metro, src)) in &self.pins {
            eat(&[4, u64::from(a.0), u64::from(metro)]);
            for b in src.as_bytes() {
                eat(&[u64::from(*b)]);
            }
        }
        for (&a, &r) in &self.region_pins {
            eat(&[5, u64::from(a.0), u64::from(r)]);
        }
        for &a in &self.vpi_cbis {
            eat(&[6, u64::from(a.0)]);
        }
        for &(n, bgp, whois, ixp) in &self.table1 {
            eat(&[7, n as u64, bgp, whois, ixp]);
        }
        eat(&[8, self.accepted as u64]);
        for &(_, n) in &self.discards {
            eat(&[9, n as u64]);
        }
        for &n in &self.campaign {
            eat(&[10, n as u64]);
        }
        for (_, n) in self.fault_impact.counters() {
            eat(&[11, n]);
        }
        eat(&[12, u64::from(self.version)]);
        eat(&[13, self.metrics_digest]);
        h
    }
}

/// Digests a metrics snapshot via its text exposition — the same bytes the
/// `trace` experiment prints, so "what the digest covers" is exactly "what
/// you can read".
pub fn metrics_digest(snapshot: &cm_obs::Snapshot) -> u64 {
    let mut h = 0x0B5_D16E_u64;
    for b in snapshot.expose().as_bytes() {
        h = stablehash::splitmix64(h ^ u64::from(*b));
    }
    h
}

/// The stable name of a pin's evidence source.
fn source_name(source: cloudmap::pinning::PinSource) -> &'static str {
    use cloudmap::pinning::PinSource;
    match source {
        PinSource::DnsName => "dns",
        PinSource::IxpAssociation => "ixp",
        PinSource::Footprint => "footprint",
        PinSource::NativeColo => "native",
        PinSource::AliasRule => "alias",
        PinSource::RttRule => "rtt",
    }
}

/// What a fault profile changed relative to the clean run on the same
/// seed: set churn per product, not just counts, so a profile that swaps
/// one CBI for another is visible even when totals agree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GoldenDiff {
    /// CBIs (lost, gained) vs. clean.
    pub cbis: (usize, usize),
    /// ABIs (lost, gained) vs. clean.
    pub abis: (usize, usize),
    /// Segments (lost, gained) vs. clean.
    pub segments: (usize, usize),
    /// Addresses whose metro pin appeared, vanished or moved.
    pub pins_changed: usize,
    /// VPI CBIs (lost, gained) vs. clean.
    pub vpi: (usize, usize),
    /// Accepted-traceroute delta (faulted − clean).
    pub accepted_delta: i64,
}

fn churn<T: Ord + Copy>(clean: &BTreeSet<T>, faulted: &BTreeSet<T>) -> (usize, usize) {
    (
        clean.difference(faulted).count(),
        faulted.difference(clean).count(),
    )
}

impl GoldenDiff {
    /// Diffs a faulted summary against the clean one.
    pub fn between(clean: &AtlasSummary, faulted: &AtlasSummary) -> GoldenDiff {
        let pins_changed = clean
            .pins
            .iter()
            .filter(|(a, p)| faulted.pins.get(a) != Some(p))
            .count()
            + faulted
                .pins
                .keys()
                .filter(|a| !clean.pins.contains_key(a))
                .count();
        GoldenDiff {
            cbis: churn(&clean.cbis, &faulted.cbis),
            abis: churn(&clean.abis, &faulted.abis),
            segments: churn(&clean.segments, &faulted.segments),
            pins_changed,
            vpi: churn(&clean.vpi_cbis, &faulted.vpi_cbis),
            accepted_delta: faulted.accepted as i64 - clean.accepted as i64,
        }
    }

    /// True when the faulted run inferred exactly what the clean run did.
    pub fn is_empty(&self) -> bool {
        *self == GoldenDiff::default()
    }
}

/// Renders one golden file: header, digests, per-product counts and churn,
/// §4.1 accounting and the fault-impact counters. Everything in it is
/// deterministic in (scale, seed, profile) — no wall clocks, no paths.
pub fn render_golden(
    profile: &str,
    scale: &str,
    seed: u64,
    clean: &AtlasSummary,
    faulted: &AtlasSummary,
) -> String {
    let diff = GoldenDiff::between(clean, faulted);
    let mut out = String::new();
    let churn_line = |name: &str, n: usize, (lost, gained): (usize, usize)| {
        format!("{name}: {n} -{lost} +{gained}\n")
    };
    let _ = writeln!(out, "profile: {profile}");
    let _ = writeln!(out, "scale: {scale}");
    let _ = writeln!(out, "seed: {seed}");
    let _ = writeln!(out, "version: {}", faulted.version);
    let _ = writeln!(out, "clean_digest: {:#018x}", clean.digest());
    let _ = writeln!(out, "fault_digest: {:#018x}", faulted.digest());
    let _ = writeln!(out, "clean_metrics: {:#018x}", clean.metrics_digest);
    let _ = writeln!(out, "fault_metrics: {:#018x}", faulted.metrics_digest);
    out.push_str(&churn_line("cbis", faulted.cbis.len(), diff.cbis));
    out.push_str(&churn_line("abis", faulted.abis.len(), diff.abis));
    out.push_str(&churn_line(
        "segments",
        faulted.segments.len(),
        diff.segments,
    ));
    let _ = writeln!(
        out,
        "pins: {} changed {}",
        faulted.pins.len(),
        diff.pins_changed
    );
    out.push_str(&churn_line("vpi", faulted.vpi_cbis.len(), diff.vpi));
    let _ = writeln!(
        out,
        "campaign: launched {} completed {} gap_limited {} max_ttl {}",
        faulted.campaign[0], faulted.campaign[1], faulted.campaign[2], faulted.campaign[3]
    );
    let _ = writeln!(
        out,
        "accepted: {} ({:+})",
        faulted.accepted, diff.accepted_delta
    );
    let discards: Vec<String> = faulted
        .discards
        .iter()
        .map(|(n, c)| format!("{n}={c}"))
        .collect();
    let _ = writeln!(out, "discards: {}", discards.join(" "));
    let impact: Vec<String> = faulted
        .fault_impact
        .counters()
        .iter()
        .map(|(n, c)| format!("{n}={c}"))
        .collect();
    let _ = writeln!(out, "impact: {}", impact.join(" "));
    out.push_str("audit: clean\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> AtlasSummary {
        AtlasSummary {
            cbis: [Ipv4(10), Ipv4(20)].into_iter().collect(),
            abis: [Ipv4(1)].into_iter().collect(),
            segments: [(Ipv4(1), Ipv4(10))].into_iter().collect(),
            pins: [(Ipv4(1), (3, "dns"))].into_iter().collect(),
            accepted: 5,
            ..AtlasSummary::default()
        }
    }

    #[test]
    fn equal_summaries_have_equal_digests_and_empty_diff() {
        let (a, b) = (base(), base());
        assert_eq!(a.digest(), b.digest());
        assert!(GoldenDiff::between(&a, &b).is_empty());
    }

    #[test]
    fn churn_and_digest_track_set_swaps() {
        let clean = base();
        let mut faulted = base();
        // Swap one CBI for another: totals agree, churn must not.
        faulted.cbis.remove(&Ipv4(20));
        faulted.cbis.insert(Ipv4(30));
        // Move a pin without changing the pin count.
        faulted.pins.insert(Ipv4(1), (4, "dns"));
        let diff = GoldenDiff::between(&clean, &faulted);
        assert_eq!(diff.cbis, (1, 1));
        assert_eq!(diff.pins_changed, 1);
        assert_ne!(clean.digest(), faulted.digest());
    }

    #[test]
    fn rendering_is_stable_and_complete() {
        let clean = base();
        let golden = render_golden("clean", "tiny", 2019, &clean, &clean);
        assert_eq!(golden, render_golden("clean", "tiny", 2019, &clean, &clean));
        for key in [
            "profile: clean",
            "clean_digest: 0x",
            "fault_digest: 0x",
            "cbis: 2 -0 +0",
            "impact: burst_loss=0",
            "audit: clean",
        ] {
            assert!(golden.contains(key), "missing {key:?} in:\n{golden}");
        }
    }
}

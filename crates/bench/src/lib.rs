//! # cm-bench — experiment harness
//!
//! Regenerates every table and figure of the paper from a synthetic
//! Internet, rendering each next to the paper's reference values so the
//! *shape* comparison is immediate. The `experiments` binary drives the
//! functions here; the Criterion benches reuse the same entry points.

#![deny(missing_docs)]

use cloudmap::pipeline::{Atlas, Pipeline, PipelineConfig};
use cloudmap::score;
use cm_topology::{Internet, TopologyConfig};

pub mod golden;
pub mod jsonv;
pub mod report;
pub mod serve;
pub mod tracediff;

pub use golden::{
    metrics_digest, run_study_with, study_config, AtlasSummary, GoldenDiff, SUMMARY_VERSION,
};

/// Builds a ground-truth Internet at a named scale.
///
/// * `tiny` — CI-sized (seconds);
/// * `small` — ~¼ paper scale, the harness default;
/// * `full` — the paper-scale default configuration.
pub fn build_internet(scale: &str, seed: u64) -> Internet {
    let cfg = match scale {
        "tiny" => TopologyConfig::tiny(),
        "small" => TopologyConfig::small(),
        "full" => TopologyConfig::default(),
        other => panic!("unknown scale {other:?} (tiny|small|full)"),
    };
    Internet::generate(cfg, seed)
}

/// Runs the full pipeline with default settings.
///
/// # Panics
/// On a degenerate Internet the pipeline cannot measure (no primary-cloud
/// regions, or a cloud ASN absent from AS2ORG). The harness always probes
/// generated worlds, where both conditions hold by construction.
pub fn run_study(inet: &Internet) -> Atlas<'_> {
    match Pipeline::new(inet, PipelineConfig::default()).run() {
        Ok(atlas) => atlas,
        Err(e) => panic!("pipeline failed on generated Internet: {e}"),
    }
}

/// Quantile of a pre-sorted f64 slice, linearly interpolated between
/// ranks (the "type 7" estimator). Nearest-rank rounding would collapse
/// p99 to the maximum on samples smaller than ~200 points — exactly the
/// tail the latency reports care about.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() || !q.is_finite() {
        return f64::NAN;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Fraction of values at or below `x`.
pub fn cdf_at(sorted: &[f64], x: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.partition_point(|&v| v <= x) as f64 / sorted.len() as f64
}

/// Sorts a copy ascending. NaN-safe: `total_cmp` orders NaNs to the end
/// instead of panicking, so a stray NaN in a latency series degrades the
/// report instead of crashing it.
pub fn sorted(v: &[f64]) -> Vec<f64> {
    let mut s = v.to_vec();
    s.sort_by(f64::total_cmp);
    s
}

/// Ground-truth score summary line (simulation-only capability).
pub fn score_summary(atlas: &Atlas<'_>) -> String {
    let s = score::full_score(atlas);
    format!(
        "ground truth: CBI p={:.3} r={:.3} | ABI p={:.3} r={:.3} | peers p={:.3} r={:.3} | \
         pin metro acc={:.3} cov={:.3} | VPI p={:.3} r={:.3}",
        s.border.cbi.precision,
        s.border.cbi.recall,
        s.border.abi.precision,
        s.border.abi.recall,
        s.border.peers.precision,
        s.border.peers.recall,
        s.pin.metro_accuracy,
        s.pin.metro_coverage,
        s.vpi.precision,
        s.vpi.recall,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_and_cdf() {
        let v = sorted(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert!((cdf_at(&v, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(cdf_at(&[], 1.0), 0.0);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn sorted_survives_nan_and_orders_it_last() {
        let v = sorted(&[2.0, f64::NAN, 1.0]);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert!(v[2].is_nan());
    }

    #[test]
    fn quantile_interpolates_between_ranks() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&v, 0.25) - 1.75).abs() < 1e-12);
        // p99 of 1..=100 must not collapse to the max.
        let big: Vec<f64> = (1..=100).map(f64::from).collect();
        assert!((quantile(&big, 0.99) - 99.01).abs() < 1e-9);
        assert!((quantile(&big, 0.999) - 99.901).abs() < 1e-9);
        // Small samples: p99 sits just below the max, not on it.
        let small = [10.0, 20.0, 30.0];
        assert!(quantile(&small, 0.99) < 30.0);
        assert!(quantile(&small, 0.99) > 29.0);
        // Singletons answer every quantile with their one value.
        assert_eq!(quantile(&[7.0], 0.0), 7.0);
        assert_eq!(quantile(&[7.0], 0.999), 7.0);
        // Out-of-range and non-finite q degrade, never panic.
        assert_eq!(quantile(&v, -1.0), 1.0);
        assert_eq!(quantile(&v, 2.0), 4.0);
        assert!(quantile(&v, f64::NAN).is_nan());
    }

    #[test]
    fn scales_resolve() {
        let t = build_internet("tiny", 1);
        assert_eq!(t.primary_cloud().regions.len(), 4);
    }

    #[test]
    #[should_panic]
    fn unknown_scale_panics() {
        build_internet("galactic", 1);
    }
}

//! Seeded load generator for the `cm-serve` query engine.
//!
//! ```text
//! serve-spammer [--scale tiny|small|full] [--seed N] [--threads N]
//!               [--ops N] [--warmup N] [--snapshot PATH]
//!               [--bench-json PATH] [--bench-label LABEL]
//! ```
//!
//! The round trip the binary exercises end to end:
//!
//! 1. generate a ground-truth Internet and run the full pipeline;
//! 2. cut a versioned snapshot from the atlas (the encode runs inside a
//!    flight-recorder span carrying the byte count) and write it to disk;
//! 3. read the file back, prove a tampered copy is rejected, and build
//!    the query engine from the verified bytes;
//! 4. run a warmup round (same seeded stream, nothing recorded) so the
//!    measured round's latency samples exclude cold caches, then hammer
//!    the engine from `--threads` workers, each issuing `--ops` seeded
//!    queries, and append throughput + tail latencies to the
//!    `BENCH_serve.json` history.
//!
//! The query stream (and its answer checksum) is deterministic for a
//! fixed `(scale, seed)`; only the wall clocks and latency samples vary
//! run to run, and they land only in the history record, never in a
//! golden digest.
//!
//! Run with `cargo run --release -p cm-bench --bin serve-spammer`.

use cm_bench::serve::{bench_serve_json, snapshot_of, spam, warmup};
use cm_bench::{build_internet, report, run_study};
use cm_serve::{AtlasSnapshot, Engine};
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn parsed<T: std::str::FromStr>(value: Option<String>, what: &str) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => fail(&format!("{what} needs a valid value")),
    }
}

fn main() {
    let mut scale = String::from("tiny");
    let mut seed: u64 = 2019;
    let mut threads: usize = 4;
    let mut ops: usize = 1_000_000;
    let mut warmup_ops: Option<usize> = None;
    let mut snapshot_path = std::path::PathBuf::from("atlas.cmsnap");
    let mut bench_json = std::path::PathBuf::from("BENCH_serve.json");
    let mut bench_label: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => match args.next() {
                Some(s) => scale = s,
                None => fail("--scale needs a value"),
            },
            "--seed" => seed = parsed(args.next(), "--seed"),
            "--threads" => threads = parsed(args.next(), "--threads"),
            "--ops" => ops = parsed(args.next(), "--ops"),
            "--warmup" => warmup_ops = Some(parsed(args.next(), "--warmup")),
            "--snapshot" => match args.next() {
                Some(p) => snapshot_path = p.into(),
                None => fail("--snapshot needs a path"),
            },
            "--bench-json" => match args.next() {
                Some(p) => bench_json = p.into(),
                None => fail("--bench-json needs a path"),
            },
            "--bench-label" => match args.next() {
                Some(l) => bench_label = Some(l),
                None => fail("--bench-label needs a value"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: serve-spammer [--scale tiny|small|full] [--seed N] [--threads N] \
                     [--ops N] [--warmup N] [--snapshot PATH] [--bench-json PATH] \
                     [--bench-label LABEL]"
                );
                return;
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }
    if !["tiny", "small", "full"].contains(&scale.as_str()) {
        fail(&format!("unknown scale {scale:?} (tiny|small|full)"));
    }
    if threads == 0 || ops == 0 {
        fail("--threads and --ops must be positive");
    }

    eprintln!(
        "# generating ground truth (scale={scale}, seed={seed}) and running the pipeline ..."
    );
    let inet = build_internet(&scale, seed);
    let atlas = run_study(&inet);

    let snap = snapshot_of(&atlas);
    // The encode runs inside a standalone flight-recorder span so the
    // byte count lands as a deterministic span cost (the wall clock is
    // quarantined like every other timing).
    let recorder = cm_obs::Recorder::default();
    recorder.span_start("encode");
    let encode_start = Instant::now();
    let bytes = snap.encode();
    recorder.span_end(
        "encode",
        Some(encode_start.elapsed().as_secs_f64() * 1e3),
        vec![("bytes", bytes.len() as u64)],
    );
    for ev in recorder.events() {
        eprintln!("# {}", cm_obs::event_jsonl(&ev, true));
    }
    if let Err(e) = std::fs::write(&snapshot_path, &bytes) {
        fail(&format!("writing {} failed: {e}", snapshot_path.display()));
    }
    eprintln!(
        "# snapshot: {} bytes ({} interfaces, {} prefixes, {} segments) -> {}",
        bytes.len(),
        snap.interfaces.len(),
        snap.prefixes.len(),
        snap.segments.len(),
        snapshot_path.display()
    );

    // Reload from disk through the validating decoder — the engine only
    // ever sees digest-verified bytes.
    let reread = match std::fs::read(&snapshot_path) {
        Ok(b) => b,
        Err(e) => fail(&format!("reading {} failed: {e}", snapshot_path.display())),
    };
    let loaded = match AtlasSnapshot::decode(&reread) {
        Ok(s) => s,
        Err(e) => fail(&format!("decoding {} failed: {e}", snapshot_path.display())),
    };
    if loaded != snap {
        fail("round-tripped snapshot differs from the one written");
    }

    // Prove the tamper gate on the real artifact: one flipped payload bit
    // must be rejected, loudly.
    let mut tampered = reread.clone();
    let last = tampered.len() - 1;
    tampered[last] ^= 0x01;
    match AtlasSnapshot::decode(&tampered) {
        Err(e) => eprintln!("# tamper check: flipped 1 bit -> rejected ({e})"),
        Ok(_) => fail("tampered snapshot was accepted — digest gate is broken"),
    }

    let engine = Engine::build(&loaded, threads);
    // Warm the engine with the identical seeded stream before any
    // latency is sampled; default one tenth of the measured ops.
    let warmup_per_thread = warmup_ops.unwrap_or_else(|| (ops / 10).max(1));
    eprintln!(
        "# engine: {} interfaces, {} prefixes, {} shards; warmup {threads} x {warmup_per_thread} \
         ops, then spamming {threads} x {ops} ops ...",
        engine.interface_count(),
        engine.prefix_count(),
        engine.shard_count()
    );
    let warm = warmup(&engine, seed, threads, warmup_per_thread);
    let round = spam(&engine, seed, threads, ops);
    // A full-length warmup replays the exact measured stream, so the
    // checksums must agree (a shorter warmup is a prefix and cannot).
    if warmup_per_thread == ops && warm != round.checksum {
        fail("warmup stream diverged from the measured stream");
    }
    let merged = engine.merged_metrics();
    println!(
        "serve: {:.0} lookups/sec ({} ops in {:.3}s, {} threads)",
        round.lookups_per_sec(),
        round.total_ops(),
        round.wall_secs,
        round.threads
    );
    println!(
        "mix: point={} lpm={} neighbors={} hits={} checksum={:#018x}",
        round.kind_counts[0],
        round.kind_counts[1],
        round.kind_counts[2],
        round.hits,
        round.checksum
    );
    println!(
        "latency_ns: samples={} p50={:.0} p99={:.0} p999={:.0}",
        round.latencies_ns.len(),
        cm_bench::quantile(&round.latencies_ns, 0.50),
        cm_bench::quantile(&round.latencies_ns, 0.99),
        cm_bench::quantile(&round.latencies_ns, 0.999)
    );
    println!(
        "rolling_window: p50={:.0} p99={:.0} (last {} samples per shard)",
        engine.latency_quantile(0.50).unwrap_or(f64::NAN),
        engine.latency_quantile(0.99).unwrap_or(f64::NAN),
        cm_serve::engine::LATENCY_WINDOW
    );
    println!(
        "shards: merged point={} lpm={} neighbors={}",
        merged.counter("serve_point_total").unwrap_or(0),
        merged.counter("serve_lpm_total").unwrap_or(0),
        merged.counter("serve_neighbors_total").unwrap_or(0)
    );

    let label = bench_label.unwrap_or_else(|| format!("{scale}-{seed}-t{threads}"));
    let total_warmup = (warmup_per_thread * threads) as u64;
    let record = bench_serve_json(
        &label,
        &scale,
        seed,
        &snap,
        bytes.len(),
        total_warmup,
        &round,
    );
    let existing = std::fs::read_to_string(&bench_json).ok();
    let history = report::append_bench_history(existing.as_deref(), &record);
    if let Err(e) = std::fs::write(&bench_json, history) {
        fail(&format!("writing {} failed: {e}", bench_json.display()));
    }
    eprintln!(
        "# run record \"{label}\" appended to {}",
        bench_json.display()
    );
}

//! The trace-diff regression localizer CLI.
//!
//! ```text
//! trace-diff history PATH [--scale SCALE] [--top N] [--gate RATIO]
//!                         [--report PATH] [--flame-base PATH] [--flame-new PATH]
//! trace-diff jsonl BASE NEW [--top N] [--gate RATIO] [--report PATH]
//! trace-diff flame INPUT [--counter NAME] [--out PATH]
//! ```
//!
//! * `history` diffs the two newest comparable records (same scale when
//!   `--scale` is given, clean fault plan, not churn) of a
//!   `BENCH_pipeline.json` history — the CI perf gate's mode;
//! * `jsonl` diffs two flight-recorder JSONL traces (as written by
//!   `experiments --trace-jsonl`);
//! * `flame` renders one trace (a JSONL file, or a history file whose
//!   newest comparable record is used) as collapsed flamegraph stacks —
//!   self wall microseconds by default, a deterministic span cost
//!   counter with `--counter`.
//!
//! The localization report ranks span paths by absolute self-time delta
//! and annotates each with its deterministic cost-counter drift, so a
//! wall-clock regression with no cost drift reads as "machine got
//! slower / code got slower", while one with matching `probes` or
//! `pool_merges` growth reads as "the workload grew, here". With
//! `--gate RATIO` the binary exits 1 when the end-to-end ratio exceeds
//! the gate — the report (also written to `--report`) then names the
//! culprits.
//!
//! Run with `cargo run --release -p cm-bench --bin trace-diff`.

use cm_bench::jsonv::Json;
use cm_bench::tracediff::{
    diff, history_profiles, profile_history_record, profile_trace_jsonl, render_report, SpanProfile,
};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage: trace-diff history PATH [--scale SCALE] [--top N] [--gate RATIO] \
         [--report PATH] [--flame-base PATH] [--flame-new PATH]\n\
         \x20      trace-diff jsonl BASE NEW [--top N] [--gate RATIO] [--report PATH]\n\
         \x20      trace-diff flame INPUT [--counter NAME] [--out PATH]"
    );
    std::process::exit(2);
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => fail(&format!("reading {path} failed: {e}")),
    }
}

fn write_file(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        fail(&format!("writing {path} failed: {e}"));
    }
}

/// A profile from either artifact kind: JSONL event lines, or a
/// `BENCH_pipeline.json` history (newest comparable record).
fn profile_any(path: &str) -> SpanProfile {
    let text = read(path);
    if text.trim_start().starts_with('[') {
        match history_profiles(&text, None) {
            Ok((_, newest)) => newest,
            Err(e) => {
                // A one-record history still has a profile to render.
                match Json::parse(&text)
                    .ok()
                    .and_then(|doc| doc.as_array().and_then(<[Json]>::last).cloned())
                    .map(|r| profile_history_record(&r))
                {
                    Some(Ok(p)) => p,
                    _ => fail(&format!("{path}: {e}")),
                }
            }
        }
    } else {
        match profile_trace_jsonl(path, &text) {
            Ok(p) => p,
            Err(e) => fail(&format!("{path}: {e}")),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else { usage() };

    let mut top = 10usize;
    let mut gate: Option<f64> = None;
    let mut report_path: Option<String> = None;
    let mut scale: Option<String> = None;
    let mut counter: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut flame_base: Option<String> = None;
    let mut flame_new: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();

    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| match it.next() {
            Some(v) => v.clone(),
            None => fail(&format!("{what} needs a value")),
        };
        match a.as_str() {
            "--top" => {
                top = match value("--top").parse() {
                    Ok(n) => n,
                    Err(_) => fail("--top needs an integer"),
                }
            }
            "--gate" => {
                gate = match value("--gate").parse() {
                    Ok(r) => Some(r),
                    Err(_) => fail("--gate needs a ratio like 1.20"),
                }
            }
            "--report" => report_path = Some(value("--report")),
            "--scale" => scale = Some(value("--scale")),
            "--counter" => counter = Some(value("--counter")),
            "--out" => out_path = Some(value("--out")),
            "--flame-base" => flame_base = Some(value("--flame-base")),
            "--flame-new" => flame_new = Some(value("--flame-new")),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => fail(&format!("unknown flag {other}")),
        }
    }

    let (base, new) = match mode.as_str() {
        "history" => {
            let [path] = positional.as_slice() else {
                usage()
            };
            match history_profiles(&read(path), scale.as_deref()) {
                Ok(pair) => pair,
                Err(e) => fail(&format!("{path}: {e}")),
            }
        }
        "jsonl" => {
            let [base_path, new_path] = positional.as_slice() else {
                usage()
            };
            let parse = |p: &str| match profile_trace_jsonl(p, &read(p)) {
                Ok(profile) => profile,
                Err(e) => fail(&format!("{p}: {e}")),
            };
            (parse(base_path), parse(new_path))
        }
        "flame" => {
            let [input] = positional.as_slice() else {
                usage()
            };
            let profile = profile_any(input);
            let collapsed = profile.collapsed(counter.as_deref());
            match out_path {
                Some(p) => {
                    write_file(&p, &collapsed);
                    eprintln!("# collapsed stacks for {:?} written to {p}", profile.label);
                }
                None => print!("{collapsed}"),
            }
            return;
        }
        _ => usage(),
    };

    let d = diff(&base, &new);
    let report = render_report(&d, top);
    print!("{report}");
    if let Some(p) = report_path {
        write_file(&p, &report);
    }
    if let Some(p) = flame_base {
        write_file(&p, &base.collapsed(None));
    }
    if let Some(p) = flame_new {
        write_file(&p, &new.collapsed(None));
    }
    if let Some(g) = gate {
        if d.total_ratio() > g {
            eprintln!(
                "trace-diff: gate failed — total ratio {:.3} exceeds {:.2}; \
                 top regressed span paths are listed above",
                d.total_ratio(),
                g
            );
            std::process::exit(1);
        }
        eprintln!("trace-diff: gate ok ({:.3} <= {:.2})", d.total_ratio(), g);
    }
}

//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [EXPERIMENT] [--scale tiny|small|full] [--seed N] [--dump DIR]
//!             [--bench-json PATH] [--bench-label LABEL] [--faults PROFILE]
//!             [--workers N] [--trace-jsonl PATH] [--flame PATH] [--epochs N]
//!
//! EXPERIMENT: all (default) | table1..table6 | fig4a | fig4b | fig5 | fig6
//!             | fig7 | pinning-eval | icg | hiding-map | bdrmap | scores
//!             | timings | trace | churn
//! ```
//!
//! `churn` is a longitudinal campaign rather than a single run: it replays
//! an era-0 baseline plus `--epochs` (default 4) route-flap churn epochs
//! twice — from scratch with the full pipeline for every era, and
//! incrementally with
//! `cloudmap::delta::DeltaEngine` — verifies the golden digests agree at
//! every era, prints the per-era churn reports, and records the wall-clock
//! win in the `BENCH_pipeline.json` history. If the chosen `--faults`
//! profile has no churning route flap, a default one (flap 10%, 1% of
//! /24s rerolled per era) is injected so there is churn to measure.
//!
//! Every run also appends a machine-readable record of the run's wall
//! clocks and route-memo stats to the `BENCH_pipeline.json` history (path
//! overridable with `--bench-json`, record label with `--bench-label`;
//! the default label is `{scale}-{seed}-{faults}`). The history is a JSON
//! array of run records, newest last — the CI perf gate diffs the two
//! newest entries at the same scale.
//!
//! Run with `cargo run --release -p cm-bench --bin experiments`.

use cloudmap::delta::{era_config, DeltaEngine};
use cm_bench::{build_internet, report, run_study_with, score_summary, study_config, AtlasSummary};
use cm_dataplane::{FaultPlan, RouteFlap};
use cm_topology::Internet;

fn main() {
    let mut experiment = String::from("all");
    let mut scale = String::from("small");
    let mut seed: u64 = 2019;
    let mut dump: Option<std::path::PathBuf> = None;
    let mut bench_json = std::path::PathBuf::from("BENCH_pipeline.json");
    let mut bench_label: Option<String> = None;
    let mut faults = String::from("clean");
    let mut workers: usize = 0;
    let mut trace_jsonl: Option<std::path::PathBuf> = None;
    let mut flame: Option<std::path::PathBuf> = None;
    let mut epochs: u32 = 4;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().expect("--scale needs a value"),
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer")
            }
            "--dump" => dump = Some(args.next().expect("--dump needs a directory").into()),
            "--bench-json" => match args.next() {
                Some(p) => bench_json = p.into(),
                None => panic!("--bench-json needs a path"),
            },
            "--bench-label" => match args.next() {
                Some(l) => bench_label = Some(l),
                None => panic!("--bench-label needs a value"),
            },
            "--faults" => faults = args.next().expect("--faults needs a profile name"),
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => workers = v,
                None => panic!("--workers needs an integer"),
            },
            "--trace-jsonl" => match args.next() {
                Some(p) => trace_jsonl = Some(p.into()),
                None => panic!("--trace-jsonl needs a path"),
            },
            "--flame" => match args.next() {
                Some(p) => flame = Some(p.into()),
                None => panic!("--flame needs a path"),
            },
            "--epochs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 2 => epochs = v,
                _ => panic!("--epochs needs an integer >= 2"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: experiments [EXPERIMENT] [--scale tiny|small|full] [--seed N] \
                     [--dump DIR] [--bench-json PATH] [--bench-label LABEL] \
                     [--faults PROFILE] [--workers N] [--trace-jsonl PATH] \
                     [--flame PATH] [--epochs N]"
                );
                return;
            }
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }

    const EXPERIMENTS: [&str; 20] = [
        "all",
        "timings",
        "trace",
        "churn",
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "fig4a",
        "fig4b",
        "fig5",
        "fig6",
        "fig7",
        "pinning-eval",
        "icg",
        "hiding-map",
        "bdrmap",
        "scores",
    ];
    if !EXPERIMENTS.contains(&experiment.as_str()) {
        eprintln!("error: unknown experiment {experiment:?}; one of {EXPERIMENTS:?}");
        std::process::exit(2);
    }
    if !["tiny", "small", "full"].contains(&scale.as_str()) {
        eprintln!("error: unknown scale {scale:?} (tiny|small|full)");
        std::process::exit(2);
    }
    let Some(fault_plan) = FaultPlan::named(&faults) else {
        eprintln!(
            "error: unknown fault profile {faults:?}; one of {:?}",
            FaultPlan::PROFILES
        );
        std::process::exit(2);
    };

    eprintln!("# generating ground truth (scale={scale}, seed={seed}) ...");
    let t0 = std::time::Instant::now();
    let inet = build_internet(&scale, seed);
    let generate_secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "#   {} ASes, {} interconnects, {} interfaces [{generate_secs:.1}s]",
        inet.ases.len(),
        inet.interconnects.len(),
        inet.ifaces.len(),
    );
    if !fault_plan.is_clean() {
        eprintln!(
            "# fault profile {faults}: axes {:?}",
            fault_plan.enabled_axes()
        );
    }

    if experiment == "churn" {
        let label = bench_label.unwrap_or_else(|| format!("churn-{scale}-{seed}-{faults}"));
        let record = churn_campaign(&inet, fault_plan, workers, epochs, &scale, seed, &label);
        let existing = std::fs::read_to_string(&bench_json).ok();
        let history = report::append_bench_history(existing.as_deref(), &record);
        if let Err(e) = std::fs::write(&bench_json, history) {
            panic!("writing {} failed: {e}", bench_json.display());
        }
        eprintln!(
            "# churn record \"{label}\" appended to {}",
            bench_json.display()
        );
        return;
    }

    eprintln!("# running the measurement study ...");
    let t1 = std::time::Instant::now();
    let atlas = run_study_with(&inet, study_config(fault_plan, workers));
    let pipeline_secs = t1.elapsed().as_secs_f64();
    eprintln!(
        "#   sweep {} traces ({:.2}% complete), {} CBIs, {} ABIs [{:.1}s]",
        atlas.sweep_stats.launched,
        100.0 * atlas.sweep_stats.completion_rate(),
        atlas.pool.cbis.len(),
        atlas.pool.abis.len(),
        pipeline_secs
    );

    let run = |name: &str| -> Option<String> {
        Some(match name {
            "table1" => report::table1(&atlas),
            "table2" => report::table2(&atlas),
            "table3" => report::table3(&atlas),
            "table4" => report::table4(&atlas),
            "table5" => report::table5(&atlas),
            "table6" => report::table6(&atlas),
            "fig4a" => report::fig4a(&atlas),
            "fig4b" => report::fig4b(&atlas),
            "fig5" => report::fig5(&atlas),
            "fig6" => report::fig6(&atlas),
            "fig7" => report::fig7(&atlas),
            "pinning-eval" => report::pinning_eval(&atlas),
            "icg" => report::icg(&atlas),
            "hiding-map" => report::hiding_map(&atlas),
            "bdrmap" => report::bdrmap(&atlas),
            "scores" => score_summary(&atlas),
            "timings" => report::timings(&atlas),
            "trace" => {
                // Fold the audit's rule tallies into the live registry
                // before rendering, so the exposition carries them.
                let audit_report = cm_audit::audit(&atlas);
                audit_report.export_obs(&atlas.obs.registry);
                atlas
                    .obs
                    .note(format!("audit: {} finding(s)", audit_report.findings.len()));
                report::trace(&atlas)
            }
            _ => return None,
        })
    };

    if experiment == "all" {
        for name in [
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "fig4a",
            "fig4b",
            "fig5",
            "fig6",
            "fig7",
            "pinning-eval",
            "icg",
            "hiding-map",
            "bdrmap",
            "scores",
            // "timings" and "trace" stay out of `all`: wall clocks vary
            // run to run, and `all`'s stdout is byte-stable for a fixed
            // (scale, seed).
        ] {
            println!("{}", run(name).unwrap());
        }
    } else {
        match run(&experiment) {
            Some(s) => println!("{s}"),
            None => panic!("unknown experiment {experiment:?}"),
        }
    }

    if let Some(dir) = dump {
        report::dump_tsv(&atlas, &dir).expect("TSV dump failed");
        eprintln!("# figure series written to {}", dir.display());
    }

    let label = bench_label.unwrap_or_else(|| format!("{scale}-{seed}-{faults}"));
    let record =
        report::bench_pipeline_json(&atlas, &label, &scale, seed, generate_secs, pipeline_secs);
    let existing = std::fs::read_to_string(&bench_json).ok();
    let history = report::append_bench_history(existing.as_deref(), &record);
    if let Err(e) = std::fs::write(&bench_json, history) {
        panic!("writing {} failed: {e}", bench_json.display());
    }
    eprintln!(
        "# run record \"{label}\" appended to {}",
        bench_json.display()
    );

    if let Some(path) = trace_jsonl {
        let jsonl = cm_obs::render_jsonl(&atlas.obs.recorder.events(), true);
        if let Err(e) = std::fs::write(&path, jsonl) {
            panic!("writing {} failed: {e}", path.display());
        }
        eprintln!("# flight-recorder JSONL written to {}", path.display());
    }
    if let Some(path) = flame {
        // Collapsed flamegraph stacks (inferno / flamegraph.pl input):
        // self wall in microseconds per span path. Deterministic cost
        // flamegraphs come from `trace-diff flame --counter`.
        let collapsed = cm_obs::collapsed_stacks(&atlas.obs.recorder.events(), None);
        if let Err(e) = std::fs::write(&path, collapsed) {
            panic!("writing {} failed: {e}", path.display());
        }
        eprintln!(
            "# collapsed flamegraph stacks written to {}",
            path.display()
        );
    }
}

/// The `churn` experiment: replays the era-0 baseline plus `epochs`
/// route-flap evolution steps with both strategies — from-scratch
/// recompute of every era versus the incremental delta engine —
/// cross-checks the golden digest at every era, prints the per-era
/// comparison and churn reports, and returns the `BENCH_pipeline.json`
/// record. Both sides pay for all `epochs + 1` atlases, so the headline
/// speedup is the end-to-end campaign wall-clock ratio, not a
/// steady-state cherry-pick.
fn churn_campaign(
    inet: &Internet,
    mut plan: FaultPlan,
    workers: usize,
    epochs: u32,
    scale: &str,
    seed: u64,
    label: &str,
) -> String {
    let flap = match plan.route_flap {
        Some(fl) if fl.churn_rate > 0.0 => fl,
        Some(fl) => RouteFlap {
            churn_rate: 0.01,
            ..fl
        },
        None => RouteFlap {
            flap_rate: 0.1,
            era: 0,
            churn_rate: 0.01,
        },
    };
    plan.route_flap = Some(flap);
    let cfg = study_config(plan, workers);
    eprintln!("# churn campaign: era-0 baseline + {epochs} churn epochs, route flap {flap:?}");

    eprintln!("# scratch recompute baseline ...");
    let mut scratch_secs = Vec::with_capacity(epochs as usize + 1);
    let mut scratch_digests = Vec::with_capacity(epochs as usize + 1);
    for era in 0..=epochs {
        let t = std::time::Instant::now();
        let atlas = run_study_with(inet, era_config(cfg, era));
        let secs = t.elapsed().as_secs_f64();
        scratch_digests.push(AtlasSummary::of(&atlas).digest());
        eprintln!("#   era {era}: {secs:.2}s");
        scratch_secs.push(secs);
    }

    eprintln!("# incremental delta engine ...");
    let t = std::time::Instant::now();
    let mut engine =
        DeltaEngine::new(inet, cfg).unwrap_or_else(|e| panic!("delta engine setup failed: {e}"));
    let setup_secs = t.elapsed().as_secs_f64();
    eprintln!("#   setup: {setup_secs:.2}s");
    let mut eras = Vec::with_capacity(epochs as usize + 1);
    let mut delta_total = setup_secs;
    for era in 0..=epochs {
        let t = std::time::Instant::now();
        let epoch = engine
            .run_era(era)
            .unwrap_or_else(|e| panic!("delta era {era} failed: {e}"));
        let secs = t.elapsed().as_secs_f64();
        delta_total += secs;
        let digest = AtlasSummary::of(&epoch.atlas).digest();
        assert_eq!(
            digest, scratch_digests[era as usize],
            "delta era {era} diverged from the scratch digest"
        );
        let s = &epoch.stats;
        eprintln!(
            "#   era {era}: {secs:.2}s, re-probed {}/{} groups, digest ok",
            s.sweep_synthesized + s.expansion_synthesized,
            s.sweep_groups + s.expansion_groups,
        );
        eras.push(report::ChurnEraRecord {
            era,
            scratch_seconds: scratch_secs[era as usize],
            delta_seconds: secs,
            groups: (s.sweep_groups + s.expansion_groups) as u64,
            synthesized: (s.sweep_synthesized + s.expansion_synthesized) as u64,
            churn_json: epoch.churn.map(|r| r.to_jsonl()),
        });
    }

    let scratch_total: f64 = scratch_secs.iter().sum();
    let groups: u64 = eras.iter().map(|e| e.groups).sum();
    let synthesized: u64 = eras.iter().map(|e| e.synthesized).sum();
    let hit_rate = if groups == 0 {
        0.0
    } else {
        1.0 - synthesized as f64 / groups as f64
    };

    println!("Churn campaign — incremental delta vs. scratch recompute");
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>9}",
        "era", "scratch(s)", "delta(s)", "re-probed", "speedup"
    );
    for e in &eras {
        println!(
            "{:<6} {:>10.2} {:>10.2} {:>7}/{:<6} {:>8.1}x",
            e.era,
            e.scratch_seconds,
            e.delta_seconds,
            e.synthesized,
            e.groups,
            e.scratch_seconds / e.delta_seconds
        );
    }
    println!(
        "total  {scratch_total:>10.2} {delta_total:>10.2} (incl. {setup_secs:.2}s setup) \
         {:>8.1}x",
        scratch_total / delta_total
    );
    println!("group cache hit rate: {:.1}%", 100.0 * hit_rate);
    for e in &eras {
        if let Some(churn) = &e.churn_json {
            println!("era {} churn: {churn}", e.era);
        }
    }

    report::bench_churn_json(
        label,
        scale,
        seed,
        cfg.probe_workers,
        &cfg.dataplane.faults.enabled_axes(),
        scratch_total,
        delta_total,
        hit_rate,
        &eras,
    )
}

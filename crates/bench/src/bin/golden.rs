//! Golden-atlas differential checker.
//!
//! ```text
//! golden [check|write] [--scale tiny] [--seed N] [--profile NAME|all]
//!        [--dir DIR] [--workers N] [--paranoid]
//! ```
//!
//! For each requested fault profile this runs a clean and a faulted
//! campaign on the same seed, audits both atlases with `cm-audit` (the
//! fault-accounting rules F1/F2 included), renders the clean-vs-faulted
//! diff with [`cm_bench::golden::render_golden`] and either `write`s it to
//! `--dir` or `check`s it against the committed file. `--paranoid` re-runs
//! every faulted campaign at `probe_workers` 1 and 2 and demands
//! summary-identical results — the sharded executor must not let worker
//! count leak into inference.
//!
//! Exit status: 0 clean, 1 on any mismatch or audit finding, 2 on usage
//! errors. Run with `--release`; a full tiny matrix is seconds there.

use cm_bench::build_internet;
use cm_bench::golden::{render_golden, run_study_with, study_config, AtlasSummary};
use cm_dataplane::FaultPlan;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    mode: String,
    scale: String,
    seed: u64,
    profile: String,
    dir: PathBuf,
    workers: usize,
    paranoid: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: golden [check|write] [--scale tiny|small|full] [--seed N] \
         [--profile NAME|all] [--dir DIR] [--workers N] [--paranoid]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        mode: String::from("check"),
        scale: String::from("tiny"),
        seed: 2019,
        profile: String::from("all"),
        dir: PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/golden")),
        workers: 0,
        paranoid: false,
    };
    let mut args = std::env::args().skip(1);
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {flag} needs a value");
                usage();
            }
        }
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "check" | "write" => parsed.mode = a,
            "--scale" => parsed.scale = need(&mut args, "--scale"),
            "--seed" => match need(&mut args, "--seed").parse() {
                Ok(n) => parsed.seed = n,
                Err(_) => usage(),
            },
            "--profile" => parsed.profile = need(&mut args, "--profile"),
            "--dir" => parsed.dir = need(&mut args, "--dir").into(),
            "--workers" => match need(&mut args, "--workers").parse() {
                Ok(n) => parsed.workers = n,
                Err(_) => usage(),
            },
            "--paranoid" => parsed.paranoid = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    parsed
}

/// Runs one campaign, audits it, and summarizes it. Any audit finding is
/// fatal: a golden file asserting `audit: clean` must never be written or
/// accepted over a dirty atlas.
fn audited_summary(
    inet: &cm_topology::Internet,
    plan: FaultPlan,
    workers: usize,
    label: &str,
) -> Result<AtlasSummary, String> {
    let atlas = run_study_with(inet, study_config(plan, workers));
    let report = cm_audit::audit(&atlas);
    if !report.is_clean() {
        return Err(format!("audit findings under profile {label}:\n{report}"));
    }
    Ok(AtlasSummary::of(&atlas))
}

fn main() -> ExitCode {
    let args = parse_args();
    let profiles: Vec<&str> = if args.profile == "all" {
        FaultPlan::PROFILES.to_vec()
    } else if let Some(p) = FaultPlan::PROFILES.iter().find(|p| **p == args.profile) {
        vec![*p]
    } else {
        eprintln!(
            "error: unknown profile {:?}; one of {:?}",
            args.profile,
            FaultPlan::PROFILES
        );
        return ExitCode::from(2);
    };

    eprintln!(
        "# golden {}: scale={} seed={} profiles={:?} dir={}",
        args.mode,
        args.scale,
        args.seed,
        profiles,
        args.dir.display()
    );
    let inet = build_internet(&args.scale, args.seed);

    let clean = match audited_summary(&inet, FaultPlan::default(), args.workers, "clean") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0u32;
    for profile in profiles {
        let plan = FaultPlan::named(profile).expect("profiles come from the registry");
        let faulted = if plan.is_clean() {
            clean.clone()
        } else {
            match audited_summary(&inet, plan, args.workers, profile) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    failures += 1;
                    continue;
                }
            }
        };

        if args.paranoid && !plan.is_clean() {
            for workers in [1usize, 2] {
                match audited_summary(&inet, plan, workers, profile) {
                    Ok(s) if s == faulted => {}
                    Ok(_) => {
                        eprintln!(
                            "error: profile {profile} summary differs at probe_workers={workers}"
                        );
                        failures += 1;
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        failures += 1;
                    }
                }
            }
        }

        let rendered = render_golden(profile, &args.scale, args.seed, &clean, &faulted);
        let path = args
            .dir
            .join(format!("{}-{}-{profile}.golden", args.scale, args.seed));
        match args.mode.as_str() {
            "write" => {
                if let Err(e) = std::fs::create_dir_all(&args.dir) {
                    eprintln!("error: creating {} failed: {e}", args.dir.display());
                    return ExitCode::FAILURE;
                }
                if let Err(e) = std::fs::write(&path, &rendered) {
                    eprintln!("error: writing {} failed: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("# wrote {}", path.display());
            }
            "check" => match std::fs::read_to_string(&path) {
                Ok(expected) if expected == rendered => {
                    eprintln!("# ok {}", path.display());
                }
                Ok(expected) => {
                    eprintln!("error: golden mismatch for {}", path.display());
                    for (want, got) in expected.lines().zip(rendered.lines()) {
                        if want != got {
                            eprintln!("  - {want}");
                            eprintln!("  + {got}");
                        }
                    }
                    failures += 1;
                }
                Err(e) => {
                    eprintln!(
                        "error: reading {} failed ({e}); run `golden write` to regenerate",
                        path.display()
                    );
                    failures += 1;
                }
            },
            _ => usage(),
        }
    }

    if failures > 0 {
        eprintln!("# golden: {failures} failure(s)");
        return ExitCode::FAILURE;
    }
    eprintln!("# golden: all profiles clean");
    ExitCode::SUCCESS
}

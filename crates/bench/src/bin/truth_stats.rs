//! Inspect the ground-truth peering fabric of a generated Internet —
//! per-tier portfolio composition and interconnect counts. Useful when
//! calibrating `TopologyConfig` against the paper's population.
//!
//! ```sh
//! cargo run --release -p cm-bench --bin truth_stats -- [tiny|small|full] [seed]
//! ```

use cm_topology::*;
use std::collections::{HashMap, HashSet};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale = args.next().unwrap_or_else(|| "full".into());
    let seed: u64 = args.next().map(|s| s.parse().unwrap()).unwrap_or(2019);
    let inet = cm_bench::build_internet(&scale, seed);

    let mut kinds: HashMap<AsIndex, HashSet<u8>> = HashMap::new();
    let mut ic_count: HashMap<AsIndex, usize> = HashMap::new();
    for ic in inet.cloud_interconnects(CloudId(0)) {
        let k = match ic.kind {
            IcKind::PublicIxp(_) => 0u8,
            IcKind::CrossConnect => 1,
            IcKind::Vpi { .. } => 2,
        };
        kinds.entry(ic.peer).or_default().insert(k);
        *ic_count.entry(ic.peer).or_default() += 1;
    }
    let total = kinds.len();
    let with_pub = kinds.values().filter(|k| k.contains(&0)).count();
    let pub_only = kinds
        .values()
        .filter(|k| k.len() == 1 && k.contains(&0))
        .count();
    let with_cross = kinds.values().filter(|k| k.contains(&1)).count();
    let with_vpi = kinds.values().filter(|k| k.contains(&2)).count();
    println!(
        "peers {total}: public {with_pub} ({:.0}%), public-only {pub_only}, \
         cross {with_cross}, vpi {with_vpi}",
        100.0 * with_pub as f64 / total as f64
    );
    println!(
        "interconnects: {} total for the primary cloud",
        inet.cloud_interconnects(CloudId(0)).count()
    );
    for tier in [
        AsTier::Tier1,
        AsTier::Tier2,
        AsTier::Access,
        AsTier::Content,
        AsTier::Enterprise,
    ] {
        let peers: Vec<_> = kinds
            .keys()
            .filter(|i| inet.as_node(**i).tier == tier)
            .collect();
        let p = peers.iter().filter(|i| kinds[i].contains(&0)).count();
        let ics: usize = peers.iter().map(|i| ic_count[i]).sum();
        println!(
            "  {:?}: {} peers, {} public, {} interconnects",
            tier,
            peers.len(),
            p,
            ics
        );
    }
}

//! Property test: for *arbitrary* route-flap plans (random base flap rate,
//! per-era churn rate and salt), the incremental delta engine reproduces
//! the from-scratch golden digest at every era and worker count, and the
//! F3 auditor agrees the spliced atlas is equivalent.
//!
//! This is the differential contract of `cloudmap::delta` (`DESIGN.md`
//! §14): the dirty-set derivation may only ever *over*-approximate, so no
//! randomly drawn churn pattern can surface a stale cached group.

use cloudmap::delta::{era_config, ChurnView, DeltaEngine};
use cloudmap::pipeline::{Pipeline, PipelineConfig};
use cm_bench::AtlasSummary;
use cm_dataplane::{DataPlaneConfig, FaultPlan, RouteFlap};
use cm_topology::{Internet, TopologyConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn world() -> &'static Internet {
    static W: OnceLock<Internet> = OnceLock::new();
    W.get_or_init(|| Internet::generate(TopologyConfig::tiny(), 1905))
}

/// Random route-flap plans: base flap rate across its validity range,
/// churn from "almost static" to "a third of /24s reroll per era", and
/// an arbitrary fault salt so the dirty sets land on different prefixes.
fn arb_flap_plan() -> impl Strategy<Value = FaultPlan> {
    (0.02f64..0.6, 0.001f64..0.35, any::<u64>()).prop_map(|(flap, churn, salt)| FaultPlan {
        route_flap: Some(RouteFlap {
            flap_rate: flap,
            era: 0,
            churn_rate: churn,
        }),
        salt,
        ..FaultPlan::default()
    })
}

fn config(plan: FaultPlan, workers: usize) -> PipelineConfig {
    PipelineConfig {
        dataplane: DataPlaneConfig {
            faults: plan,
            ..DataPlaneConfig::default()
        },
        probe_workers: workers,
        ..PipelineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Delta-spliced digests equal from-scratch digests for eras 0..=1 at
    /// workers ∈ {1, 2}, and `audit_delta` finds the era-1 splice (plus
    /// its churn report) equivalent.
    #[test]
    fn random_flap_plans_never_surface_a_stale_splice(plan in arb_flap_plan()) {
        let scratch: Vec<_> = (0..2u32)
            .map(|era| {
                Pipeline::new(world(), era_config(config(plan, 1), era))
                    .run()
                    .unwrap_or_else(|e| panic!("scratch era {era} failed: {e}"))
            })
            .collect();
        let scratch_digests: Vec<u64> =
            scratch.iter().map(|a| AtlasSummary::of(a).digest()).collect();

        for workers in [1usize, 2] {
            let mut engine = DeltaEngine::new(world(), config(plan, workers))
                .unwrap_or_else(|e| panic!("engine (workers={workers}): {e}"));
            let mut prev_view = None;
            for era in 0..2u32 {
                let epoch = engine
                    .run_era(era)
                    .unwrap_or_else(|e| panic!("delta era {era} (workers={workers}): {e}"));
                prop_assert_eq!(
                    AtlasSummary::of(&epoch.atlas).digest(),
                    scratch_digests[era as usize],
                    "digest diverged at era {} workers {} under {:?}",
                    era, workers, plan
                );
                let churn = epoch.churn;
                let view = ChurnView::of(&epoch.atlas);
                let audit = match (&prev_view, &churn) {
                    (Some(prev), Some(report)) => cm_audit::audit_delta(
                        &epoch.atlas,
                        &scratch[era as usize],
                        Some((prev, report)),
                    ),
                    _ => cm_audit::audit_delta(&epoch.atlas, &scratch[era as usize], None),
                };
                prop_assert!(
                    audit.is_clean(),
                    "F3 audit flagged era {} workers {}:\n{}",
                    era, workers, audit
                );
                prev_view = Some(view);
            }
        }
    }
}

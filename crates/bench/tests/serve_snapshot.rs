//! End-to-end snapshot tests at tiny scale: the Atlas → snapshot →
//! engine chain answers exactly what the atlas says, the golden digest
//! in the header pins the run, and a tampered real artifact is rejected.

use cm_bench::serve::snapshot_of;
use cm_bench::{build_internet, run_study, AtlasSummary, SUMMARY_VERSION};
use cm_net::Asn;
use cm_serve::{AtlasSnapshot, Engine, SnapshotError};

#[test]
fn snapshot_round_trips_and_pins_the_golden_digest() {
    let inet = build_internet("tiny", 2019);
    let atlas = run_study(&inet);
    let snap = snapshot_of(&atlas);

    assert_eq!(snap.summary_version, SUMMARY_VERSION);
    assert_eq!(snap.golden_digest, AtlasSummary::of(&atlas).digest());
    assert!(!snap.interfaces.is_empty(), "tiny atlas yields interfaces");
    assert!(!snap.prefixes.is_empty(), "tiny atlas yields prefixes");
    assert!(!snap.segments.is_empty(), "tiny atlas yields segments");

    let bytes = snap.encode();
    let loaded = AtlasSnapshot::decode(&bytes).expect("snapshot decodes");
    assert_eq!(loaded, snap);
    // Cutting the snapshot twice from the same atlas is byte-identical.
    assert_eq!(snapshot_of(&atlas).encode(), bytes);
}

#[test]
fn engine_answers_match_the_atlas() {
    let inet = build_internet("tiny", 2019);
    let atlas = run_study(&inet);
    let snap = snapshot_of(&atlas);
    let engine = Engine::build(&snap, 2);

    assert_eq!(
        engine.interface_count(),
        {
            let mut all: std::collections::BTreeSet<_> = atlas.pool.abis.keys().copied().collect();
            all.extend(atlas.pool.cbis.keys().copied());
            all.len()
        },
        "every pool interface is served exactly once"
    );

    // Point lookups: every CBI resolves with its inferred peer and VPI
    // verdict, every ABI with its annotation ASN.
    for &cbi in atlas.pool.cbis.keys() {
        let r = engine.point(cbi).expect("known CBI resolves");
        assert!(r.is_cbi);
        assert_eq!(r.owner, atlas.pool.peer_of(cbi).unwrap_or(Asn::RESERVED));
        assert_eq!(r.vpi, atlas.vpi.vpi_cbis.contains(&cbi));
    }
    for (&abi, note) in &atlas.pool.abis {
        // An address can be both an ABI and a CBI key; the CBI record
        // wins in the export, so only assert on pure ABIs.
        if atlas.pool.cbis.contains_key(&abi) {
            continue;
        }
        let r = engine.point(abi).expect("known ABI resolves");
        assert!(!r.is_cbi);
        assert_eq!(r.owner, note.asn);
    }

    // Longest-prefix queries agree with the atlas's own BGP trie for
    // every served interface address.
    for r in engine.records() {
        let want = atlas.snapshot.longest_match(r.addr).map(|(p, &a)| (p, a));
        assert_eq!(engine.longest_prefix(r.addr), want);
    }

    // Neighborhoods: each segment's ABI lists its CBI and vice versa.
    for (abi, cbi) in &snap.segments {
        assert!(engine.neighbors(*abi).contains(cbi));
        assert!(engine.neighbors(*cbi).contains(abi));
    }
}

#[test]
fn snapshot_survives_a_disk_round_trip_in_a_tempdir() {
    // The end-to-end disk path serve_spammer exercises, but self-contained:
    // the snapshot is cut, written and re-read inside a tempdir, so a clean
    // checkout passes with no `target/` artifacts from prior bench runs.
    let dir = std::env::temp_dir().join("cm_serve_snapshot_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tempdir creates");

    let inet = build_internet("tiny", 2019);
    let atlas = run_study(&inet);
    let snap = snapshot_of(&atlas);
    let path = dir.join("atlas.cmsnap");
    std::fs::write(&path, snap.encode()).expect("snapshot writes");

    let loaded = AtlasSnapshot::load(&path).expect("on-disk snapshot loads");
    assert_eq!(loaded, snap, "disk round trip is lossless");

    // The engine built from the re-read file serves the same run: digest
    // pin intact, every interface resolvable.
    let engine = Engine::build(&loaded, 2);
    assert_eq!(engine.golden_digest(), AtlasSummary::of(&atlas).digest());
    for r in engine.records() {
        assert!(engine.point(r.addr).is_some());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tampered_real_snapshot_is_rejected() {
    let inet = build_internet("tiny", 2019);
    let atlas = run_study(&inet);
    let bytes = snapshot_of(&atlas).encode();

    // Flip one bit in the middle of the payload (a record byte, not the
    // header) — the digest gate must catch it.
    let mut tampered = bytes.clone();
    let mid = bytes.len() / 2;
    tampered[mid] ^= 0x10;
    assert!(matches!(
        AtlasSnapshot::decode(&tampered),
        Err(SnapshotError::DigestMismatch { .. })
    ));

    // Forging the golden digest in the header is equally fatal: the file
    // digest covers the header fields too.
    let mut forged = bytes.clone();
    forged[16] ^= 0xFF;
    assert!(AtlasSnapshot::decode(&forged).is_err());

    // The untouched original still loads.
    assert!(AtlasSnapshot::decode(&bytes).is_ok());
}

/// Header layout facts the hostile-input tests below rely on (asserted
/// against the documented format rather than imported, so a layout
/// change breaks these tests loudly).
const HEADER_LEN: usize = 40;
const DIGEST_OFFSET: usize = 32;

#[test]
fn truncation_fuzz_on_a_real_snapshot_never_panics() {
    let inet = build_internet("tiny", 2019);
    let atlas = run_study(&inet);
    let bytes = snapshot_of(&atlas).encode();
    assert!(bytes.len() > HEADER_LEN);

    // Every header-region prefix, then strided prefixes across the
    // payload (the per-byte sweep lives in the cm-serve unit suite; the
    // real artifact is tens of kilobytes, so stride to keep the O(n²)
    // digest recomputation in check).
    let mut cuts: Vec<usize> = (0..=HEADER_LEN.min(bytes.len() - 1)).collect();
    cuts.extend((HEADER_LEN..bytes.len()).step_by(97));
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        assert!(
            AtlasSnapshot::decode(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes must be a typed error"
        );
    }
}

#[test]
fn forged_count_in_a_real_snapshot_is_rejected_before_allocation() {
    let inet = build_internet("tiny", 2019);
    let atlas = run_study(&inet);
    let mut bytes = snapshot_of(&atlas).encode();

    // Forge the interface-table count to u32::MAX and re-sign the file
    // so the attack reaches the table parser: the count×width
    // pre-validation must reject it as Truncated instead of attempting
    // a ~72 GiB allocation.
    bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let digest = cm_serve::snapshot::file_digest(&[&bytes[..DIGEST_OFFSET], &bytes[HEADER_LEN..]]);
    bytes[DIGEST_OFFSET..HEADER_LEN].copy_from_slice(&digest.to_le_bytes());
    assert!(matches!(
        AtlasSnapshot::decode(&bytes),
        Err(SnapshotError::Truncated { .. })
    ));
}

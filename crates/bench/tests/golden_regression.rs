//! Digest-pinning regression tests: the seed-2019 atlases are frozen.
//!
//! These constants are the `clean_digest` values of the committed golden
//! files under `crates/bench/golden/`. A failure here means a code change
//! shifted the *inference results* of the reference campaigns — which is
//! either a bug or an intentional behaviour change. If intentional,
//! regenerate the goldens (`cargo run --release -p cm-bench --bin golden --
//! write` at both scales) and update these constants in the same commit,
//! so the diff review sees exactly what moved.

use cm_bench::{build_internet, run_study, AtlasSummary};

/// `clean_digest` of `golden/tiny-2019-*.golden`.
const TINY_2019_DIGEST: u64 = 0x78cec01c80c10803;

/// `clean_digest` of `golden/small-2019-clean.golden` — the first golden.
const SMALL_2019_DIGEST: u64 = 0xcf0cee21f51db537;

#[test]
fn tiny_seed_2019_atlas_digest_is_pinned() {
    let inet = build_internet("tiny", 2019);
    let summary = AtlasSummary::of(&run_study(&inet));
    assert_eq!(
        summary.digest(),
        TINY_2019_DIGEST,
        "tiny/2019 inference results moved; see golden_regression.rs header"
    );
}

/// Slow under `cargo test` in debug — CI runs it in the release
/// fault-matrix job (`cargo test --release ... -- --ignored`).
#[test]
#[ignore = "release-only: ~1 min in debug builds"]
fn small_seed_2019_atlas_digest_is_pinned() {
    let inet = build_internet("small", 2019);
    let summary = AtlasSummary::of(&run_study(&inet));
    assert_eq!(
        summary.digest(),
        SMALL_2019_DIGEST,
        "small/2019 inference results moved; see golden_regression.rs header"
    );
}

//! Differential tests of the incremental delta engine: every era atlas it
//! splices must be **byte-identical** — same [`AtlasSummary`] golden
//! digest, same metrics exposition — to a from-scratch pipeline run under
//! [`era_config`], at any worker count, and the churn report it derives
//! must render the same JSONL bytes at any worker count.
//!
//! The tiny scale keeps the un-ignored tests inside the tier-1 budget;
//! the all-profile matrix is `#[ignore]`d and runs in the CI `delta` job
//! (`cargo test --release ... -- --include-ignored`).

use cloudmap::delta::{era_config, DeltaEngine};
use cloudmap::pipeline::PipelineConfig;
use cm_bench::{build_internet, run_study_with, study_config, AtlasSummary};
use cm_dataplane::{FaultPlan, RouteFlap};

/// A longitudinal flap axis with enough churn that consecutive tiny eras
/// genuinely differ (≈ 8% of (/24, epoch) pairs re-roll per era).
fn churny_plan() -> FaultPlan {
    FaultPlan {
        route_flap: Some(RouteFlap {
            flap_rate: 0.15,
            era: 0,
            churn_rate: 0.08,
        }),
        ..FaultPlan::default()
    }
}

fn scratch_digest(inet: &cm_topology::Internet, cfg: PipelineConfig, era: u32) -> u64 {
    AtlasSummary::of(&run_study_with(inet, era_config(cfg, era))).digest()
}

/// Runs `eras` through one engine and returns (digest, churn JSONL) per era.
fn delta_run(
    inet: &cm_topology::Internet,
    cfg: PipelineConfig,
    workers: usize,
    eras: &[u32],
) -> Vec<(u64, Option<String>)> {
    let mut engine = DeltaEngine::new(
        inet,
        PipelineConfig {
            probe_workers: workers,
            ..cfg
        },
    )
    .expect("engine construction");
    eras.iter()
        .map(|&era| {
            let epoch = engine.run_era(era).expect("era run");
            assert!(
                epoch.stats.sweep_groups > 0,
                "era {era} merged no sweep groups"
            );
            (
                AtlasSummary::of(&epoch.atlas).digest(),
                epoch.churn.map(|c| c.to_jsonl()),
            )
        })
        .collect()
}

#[test]
fn delta_matches_scratch_across_eras_and_worker_counts() {
    let inet = build_internet("tiny", 2019);
    let cfg = study_config(churny_plan(), 1);
    let eras = [0u32, 1];
    let scratch: Vec<u64> = eras
        .iter()
        .map(|&e| scratch_digest(&inet, cfg, e))
        .collect();
    assert_ne!(
        scratch[0], scratch[1],
        "the churny plan must actually move the era-1 atlas, or the test is vacuous"
    );
    let runs: Vec<_> = [1usize, 2]
        .iter()
        .map(|&w| delta_run(&inet, cfg, w, &eras))
        .collect();
    for (w, run) in [1usize, 2].iter().zip(&runs) {
        for (era, ((digest, _), want)) in eras.iter().zip(run.iter().zip(&scratch)) {
            assert_eq!(
                digest, want,
                "delta era {era} at {w} workers diverged from the scratch digest"
            );
        }
    }
    // Churn-report determinism: same JSONL bytes at every worker count.
    assert_eq!(runs[0][0].1, None, "the first era has no predecessor");
    let churn_w1 = runs[0][1].1.as_deref().expect("era 1 churn report");
    let churn_w2 = runs[1][1].1.as_deref().expect("era 1 churn report");
    assert_eq!(
        churn_w1, churn_w2,
        "churn JSONL differs across worker counts"
    );
}

#[test]
fn clean_plan_eras_are_identical_and_fully_cached() {
    let inet = build_internet("tiny", 2019);
    let cfg = study_config(FaultPlan::default(), 1);
    let mut engine = DeltaEngine::new(&inet, cfg).expect("engine construction");
    let base = engine.run_era(0).expect("era 0");
    let next = engine.run_era(1).expect("era 1");
    // No flap axis → no decision can change → era 1 re-probes nothing.
    assert_eq!(next.stats.sweep_synthesized, 0);
    assert_eq!(next.stats.expansion_synthesized, 0);
    assert!(next.stats.cache_hit_rate() > 0.999);
    assert_eq!(
        AtlasSummary::of(&base.atlas).digest(),
        AtlasSummary::of(&next.atlas).digest()
    );
    let churn = next.churn.expect("second era carries a churn report");
    assert_eq!(
        churn.to_jsonl(),
        "{\"era\":1,\"peers_appeared\":0,\"peers_vanished\":0,\"ifaces_appeared\":0,\
         \"ifaces_vanished\":0,\"pins_moved\":0,\"vpi_flicker\":0,\"icg_edges_added\":0,\
         \"icg_edges_removed\":0}"
    );
    // And the spliced clean atlas still equals a scratch run.
    assert_eq!(
        AtlasSummary::of(&next.atlas).digest(),
        scratch_digest(&inet, cfg, 1)
    );
}

/// The full committed-profile matrix at three worker counts. Release-only:
/// runs in the CI `delta` job via `--include-ignored`.
#[test]
#[ignore = "release-only: the 8-profile × 3-era matrix is minutes in debug builds"]
fn every_committed_profile_reproduces_scratch_digests() {
    let inet = build_internet("tiny", 2019);
    for profile in FaultPlan::PROFILES {
        let plan = FaultPlan::named(profile).expect("registered profile");
        // Give profiles without longitudinal churn some: the delta path
        // must hold for every axis mix, not just the flap-only plan.
        let plan = FaultPlan {
            route_flap: Some(match plan.route_flap {
                Some(f) => RouteFlap {
                    churn_rate: 0.08,
                    ..f
                },
                None => RouteFlap {
                    flap_rate: 0.15,
                    era: 0,
                    churn_rate: 0.08,
                },
            }),
            ..plan
        };
        let cfg = study_config(plan, 1);
        let eras = [0u32, 1, 2];
        let scratch: Vec<u64> = eras
            .iter()
            .map(|&e| scratch_digest(&inet, cfg, e))
            .collect();
        for workers in [1usize, 2, 4] {
            let run = delta_run(&inet, cfg, workers, &eras);
            for (era, ((digest, _), want)) in eras.iter().zip(run.iter().zip(&scratch)) {
                assert_eq!(
                    digest, want,
                    "profile {profile}, era {era}, {workers} workers diverged from scratch"
                );
            }
        }
    }
}

//! Observability determinism: the metrics registry and the deterministic
//! portion of the flight-recorder stream are byte-identical at any
//! `probe_workers` count, under arbitrary fault plans.
//!
//! This is the obs layer's acceptance contract (`DESIGN.md` §10): every
//! metric derives from pipeline data, every recorder event is appended on
//! a deterministic path, and wall clocks live only in the quarantined
//! `nondeterministic` JSONL section — so rendering with that section
//! suppressed must yield the same bytes for workers 1, 2 and 4.

use cloudmap::pipeline::{Pipeline, PipelineConfig};
use cm_bench::metrics_digest;
use cm_dataplane::faults::{AddrRewrite, Blackhole, BurstLoss, ClockSkew, MplsTunnels, RouteFlap};
use cm_dataplane::{DataPlaneConfig, FaultPlan};
use cm_topology::{Internet, TopologyConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn world() -> &'static Internet {
    static W: OnceLock<Internet> = OnceLock::new();
    W.get_or_init(|| Internet::generate(TopologyConfig::tiny(), 1905))
}

/// Random fault plans over the full parameter space (each axis present
/// half the time, rates inside their validity ranges).
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (any::<u8>(), 0.02f64..0.3, 0.2f64..0.95),
        (0.005f64..0.1, 0.02f64..0.25, 0.1f64..1.0),
        (0.5f64..6.0, 0.05f64..0.5, 0.05f64..0.6),
        any::<u64>(),
    )
        .prop_map(
            |((mask, window, burst), (bh, mpls, skew_sel), (skew_ms, rw, flap), salt)| FaultPlan {
                burst_loss: (mask & 1 != 0).then_some(BurstLoss {
                    window_rate: window,
                    loss_rate: burst,
                }),
                blackhole: (mask & 2 != 0).then_some(Blackhole { router_rate: bh }),
                mpls: (mask & 4 != 0).then_some(MplsTunnels { router_rate: mpls }),
                clock_skew: (mask & 8 != 0).then_some(ClockSkew {
                    region_rate: skew_sel,
                    max_skew_ms: skew_ms,
                }),
                addr_rewrite: (mask & 16 != 0).then_some(AddrRewrite { router_rate: rw }),
                route_flap: (mask & 32 != 0).then_some(RouteFlap::steady(flap)),
                salt,
            },
        )
}

/// Runs the full pipeline and reduces the run to its deterministic
/// observability artifacts: the exposed registry text and the JSONL
/// stream with the nondeterministic section suppressed.
fn obs_artifacts(plan: FaultPlan, workers: usize) -> (String, String, u64) {
    let cfg = PipelineConfig {
        dataplane: DataPlaneConfig {
            faults: plan,
            ..DataPlaneConfig::default()
        },
        probe_workers: workers,
        ..PipelineConfig::default()
    };
    let atlas = Pipeline::new(world(), cfg)
        .run()
        .unwrap_or_else(|e| panic!("pipeline failed: {e}"));
    let exposition = atlas.metrics.expose();
    let jsonl = cm_obs::render_jsonl(&atlas.obs.recorder.events(), false);
    let digest = metrics_digest(&atlas.metrics);
    (exposition, jsonl, digest)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Metric snapshots and the deterministic JSONL portion are
    /// byte-identical across `probe_workers` ∈ {1, 2, 4} under random
    /// fault plans.
    #[test]
    fn obs_output_is_invariant_across_worker_counts(plan in arb_plan()) {
        let (expo1, jsonl1, digest1) = obs_artifacts(plan, 1);
        prop_assert!(
            expo1.contains("probe_launched_total"),
            "registry missing probe counters:\n{}", expo1
        );
        prop_assert!(
            jsonl1.contains("\"stage_end\"") && !jsonl1.contains("nondeterministic"),
            "deterministic JSONL malformed:\n{}", jsonl1
        );
        // The hierarchical spans are part of the deterministic stream:
        // nested sub-stage paths, per-region executor spans with their
        // probe costs, and stable span IDs all land in the
        // worker-invariant bytes checked below.
        for needle in [
            "\"event\": \"span_start\"",
            "\"event\": \"span_end\"",
            "\"path\": \"sweep;probe-round\"",
            "\"path\": \"sweep;probe-round;region-0\"",
            "\"span_id\": \"0x",
            "\"costs\": {\"probes\": ",
        ] {
            prop_assert!(
                jsonl1.contains(needle),
                "span instrumentation missing {:?} in:\n{}", needle, jsonl1
            );
        }
        // The memory gauges are deterministic registry members, not
        // wall-clock readings.
        for gauge in ["pool_bytes_final", "pool_bytes_sweep", "route_memo_bytes"] {
            prop_assert!(
                expo1.contains(gauge),
                "registry missing gauge {}:\n{}", gauge, expo1
            );
        }
        for workers in [2usize, 4] {
            let (expo, jsonl, digest) = obs_artifacts(plan, workers);
            prop_assert_eq!(
                &expo1, &expo,
                "metric exposition differs at workers={}", workers
            );
            prop_assert_eq!(
                &jsonl1, &jsonl,
                "deterministic JSONL differs at workers={}", workers
            );
            prop_assert_eq!(digest1, digest, "metrics digest differs at workers={}", workers);
        }
    }
}

//! Every report renders on a tiny atlas and mentions its paper reference.

use cm_bench::{build_internet, report, run_study};

#[test]
fn every_report_renders() {
    let inet = build_internet("tiny", 3);
    let atlas = run_study(&inet);
    let checks: Vec<(&str, String, &str)> = vec![
        ("table1", report::table1(&atlas), "Table 1"),
        ("table2", report::table2(&atlas), "87.8%"),
        ("table3", report::table3(&atlas), "Table 3"),
        ("table4", report::table4(&atlas), "20.2%"),
        ("table5", report::table5(&atlas), "Pr-nB-nV"),
        ("table6", report::table6(&atlas), "Table 6"),
        ("fig4a", report::fig4a(&atlas), "2 ms"),
        ("fig4b", report::fig4b(&atlas), "2 ms"),
        ("fig5", report::fig5(&atlas), "57%"),
        ("fig6", report::fig6(&atlas), "cone"),
        ("fig7", report::fig7(&atlas), "degree"),
        ("pinning-eval", report::pinning_eval(&atlas), "precision"),
        ("icg", report::icg(&atlas), "component"),
    ];
    for (name, text, needle) in checks {
        assert!(!text.trim().is_empty(), "{name} rendered empty");
        assert!(text.contains(needle), "{name} missing {needle:?}:\n{text}");
    }
}

#[test]
fn tsv_dump_writes_all_series() {
    let inet = build_internet("tiny", 3);
    let atlas = run_study(&inet);
    let dir = std::env::temp_dir().join("cm_bench_tsv_test");
    let _ = std::fs::remove_dir_all(&dir);
    report::dump_tsv(&atlas, &dir).unwrap();
    for f in [
        "fig4a.tsv",
        "fig4b.tsv",
        "fig5.tsv",
        "fig6.tsv",
        "fig7a.tsv",
        "fig7b.tsv",
    ] {
        let p = dir.join(f);
        let content = std::fs::read_to_string(&p).unwrap_or_else(|_| panic!("{f} missing"));
        assert!(content.lines().count() >= 1, "{f} empty");
        assert!(
            content.lines().next().unwrap().contains('\t'),
            "{f} has no header"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

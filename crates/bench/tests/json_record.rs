//! Smoke test for the machine-readable run record: the hand-rolled
//! `BENCH_pipeline.json` must stay syntactically valid JSON (CI also pipes
//! it through `json.tool`) and must carry the timing and route-memo fields
//! the acceptance pipeline reads.

use cm_bench::{build_internet, report, run_study};

/// A minimal recursive-descent JSON syntax checker — just enough to prove
/// the hand-rolled writer emits well-formed output. Returns the rest of the
/// input after one value, or `None` on a syntax error.
fn skip_value(s: &str) -> Option<&str> {
    let s = s.trim_start();
    let mut chars = s.char_indices();
    match chars.next()?.1 {
        '{' => {
            let mut rest = s[1..].trim_start();
            if let Some(r) = rest.strip_prefix('}') {
                return Some(r);
            }
            loop {
                rest = rest.trim_start();
                rest = rest.strip_prefix('"')?;
                let close = rest.find('"')?;
                rest = rest[close + 1..].trim_start();
                rest = rest.strip_prefix(':')?;
                rest = skip_value(rest)?.trim_start();
                if let Some(r) = rest.strip_prefix(',') {
                    rest = r;
                } else {
                    return rest.strip_prefix('}');
                }
            }
        }
        '[' => {
            let mut rest = s[1..].trim_start();
            if let Some(r) = rest.strip_prefix(']') {
                return Some(r);
            }
            loop {
                rest = skip_value(rest)?.trim_start();
                if let Some(r) = rest.strip_prefix(',') {
                    rest = r;
                } else {
                    return rest.strip_prefix(']');
                }
            }
        }
        '"' => {
            let close = s[1..].find('"')?;
            Some(&s[close + 2..])
        }
        _ => {
            // Number, true/false/null: consume the atom.
            let end = s
                .find(|c: char| ",]}".contains(c) || c.is_whitespace())
                .unwrap_or(s.len());
            let atom = &s[..end];
            let ok =
                atom == "true" || atom == "false" || atom == "null" || atom.parse::<f64>().is_ok();
            ok.then(|| &s[end..])
        }
    }
}

fn assert_valid_json(s: &str) {
    let rest = skip_value(s).unwrap_or_else(|| panic!("JSON syntax error in:\n{s}"));
    assert!(
        rest.trim().is_empty(),
        "trailing garbage after JSON value: {rest:?}"
    );
}

#[test]
fn bench_pipeline_json_is_valid_and_complete() {
    let inet = build_internet("tiny", 2019);
    let atlas = run_study(&inet);
    let json = report::bench_pipeline_json(&atlas, "tiny-2019-clean", "tiny", 2019, 0.5, 1.5);
    assert_valid_json(&json);

    // The fields the acceptance pipeline reads.
    for key in [
        "\"label\"",
        "\"scale\"",
        "\"seed\"",
        "\"probe_workers\"",
        "\"generate_seconds\"",
        "\"pipeline_seconds\"",
        "\"stages\"",
        "\"spans\"",
        "\"route_memo_total\"",
        "\"fault_plan\"",
        "\"fault_impact\"",
        "\"discards\"",
        "\"metrics\"",
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "\"sweep\"",
        "\"expansion\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }

    // The metrics section carries the probe-outcome counters the obs CI
    // job smoke-parses.
    for metric in [
        "\"probe_launched_total\"",
        "\"probe_hops\"",
        "\"rtt_ms\"",
        "\"traceroute_accepted_total\"",
    ] {
        assert!(json.contains(metric), "missing metric {metric} in:\n{json}");
    }
    for stage in [
        "public-data",
        "sweep",
        "expansion",
        "verify",
        "rtt",
        "pinning",
        "vpi",
        "grouping",
    ] {
        assert!(
            json.contains(&format!("\"name\": \"{stage}\"")),
            "missing stage {stage}"
        );
    }

    // The memo's reason to exist: expansion re-probes whole /24s whose
    // routes the memo already holds, so its hit rate must be high.
    let expansion = atlas
        .timings
        .memo("expansion")
        .expect("expansion stage records memo stats");
    assert!(
        expansion.hit_rate() >= 0.9,
        "expansion memo hit rate {:.3} below 0.9",
        expansion.hit_rate()
    );

    // The rendered timings table covers the same stages.
    let table = report::timings(&atlas);
    assert!(table.contains("expansion") && table.contains("total"));

    // The history wrapper keeps the file valid JSON at every step: fresh
    // file, append, and wrapping a legacy single-object file.
    let fresh = report::append_bench_history(None, &json);
    assert_valid_json(&fresh);
    assert!(fresh.trim_start().starts_with('['));
    let appended = report::append_bench_history(Some(&fresh), &json);
    assert_valid_json(&appended);
    assert_eq!(appended.matches("\"pipeline_seconds\"").count(), 2);
    let wrapped = report::append_bench_history(Some(&json), &json);
    assert_valid_json(&wrapped);
    assert_eq!(wrapped.matches("\"pipeline_seconds\"").count(), 2);
    // Newest entry last: the records in `appended` keep insertion order.
    let garbage = report::append_bench_history(Some("not json"), &json);
    assert_valid_json(&garbage);
    assert_eq!(garbage.matches("\"pipeline_seconds\"").count(), 1);
}

#[test]
fn json_checker_rejects_malformed_input() {
    assert!(skip_value("{\"a\": [1, 2,]}").is_none());
    assert!(skip_value("{\"a\": }").is_none());
    assert!(skip_value("{1: 2}").is_none());
    assert_valid_json("{\"a\": [1, 2.5, \"x\", null], \"b\": {\"c\": true}}");
}

//! End-to-end acceptance test for the trace-diff localizer: run the real
//! tiny-scale pipeline, fabricate a second run whose `expansion;probe-round`
//! sub-stage is artificially slowed, and check the diff names exactly that
//! span path as the top regression — through the same JSONL round trip the
//! CLI uses, not just the in-memory profiles.

use cm_bench::tracediff::{diff, profile_events, profile_trace_jsonl, render_report};
use cm_bench::{build_internet, report, run_study};
use cm_obs::EventKind;

const SLOWDOWN_MS: f64 = 10_000.0;

/// Same span paths, counts and deterministic cost counters exactly;
/// walls within the decimal precision the serializers render at.
fn assert_profiles_match(
    a: &cm_bench::tracediff::SpanProfile,
    b: &cm_bench::tracediff::SpanProfile,
) {
    assert_eq!(
        a.paths.keys().collect::<Vec<_>>(),
        b.paths.keys().collect::<Vec<_>>()
    );
    for (path, x) in &a.paths {
        let y = &b.paths[path];
        assert_eq!(x.count, y.count, "count mismatch at {path}");
        assert_eq!(x.costs, y.costs, "cost mismatch at {path}");
        assert!(
            (x.wall_ms - y.wall_ms).abs() < 1e-3 && (x.self_wall_ms - y.self_wall_ms).abs() < 1e-3,
            "wall drift at {path}: {x:?} vs {y:?}"
        );
    }
}

#[test]
fn slowed_expansion_sub_stage_is_localized() {
    let inet = build_internet("tiny", 2019);
    let atlas = run_study(&inet);
    let base_events = atlas.obs.recorder.events();

    // The "regressed" run: identical trace, but every wall clock on the
    // expansion probe-round (and, transitively, its enclosing stage and
    // the run total) inflated — the shape of a real slowdown localized
    // in one sub-stage.
    let mut slow_events = base_events.clone();
    let mut slowed = 0u32;
    for ev in &mut slow_events {
        let bump = match &ev.kind {
            EventKind::SpanEnd { path, .. } if path == "expansion;probe-round" => true,
            EventKind::StageEnd { stage, .. } if *stage == "expansion" => true,
            _ => false,
        };
        if bump {
            ev.wall_ms = Some(ev.wall_ms.unwrap_or(0.0) + SLOWDOWN_MS);
            slowed += 1;
        }
    }
    assert!(
        slowed >= 2,
        "expected an expansion probe-round span and its stage, found {slowed}"
    );

    // Round-trip both traces through the JSONL the CLI consumes.
    let base = profile_trace_jsonl("base", &cm_obs::render_jsonl(&base_events, true))
        .expect("baseline trace parses");
    let slow = profile_trace_jsonl("slow", &cm_obs::render_jsonl(&slow_events, true))
        .expect("slowed trace parses");
    // The JSONL round trip preserves the profile structurally: same
    // paths, counts and cost counters exactly; walls up to the rendered
    // decimal precision.
    assert_profiles_match(&base, &profile_events("base", &base_events));

    let d = diff(&base, &slow);
    assert_eq!(
        d.rows[0].path, "expansion;probe-round",
        "top regression must be the slowed sub-stage; got {:?}",
        d.rows[0]
    );
    assert!(d.rows[0].delta_ms >= SLOWDOWN_MS * 0.99);
    // The stage envelope gained no *self* time (the probe-round absorbed
    // it all), so no other expansion path may outrank real noise.
    let stage_row = d
        .rows
        .iter()
        .find(|r| r.path == "expansion")
        .expect("expansion stage row");
    assert!(
        stage_row.delta_ms.abs() < 1.0,
        "stage self time moved: {stage_row:?}"
    );

    let rendered = render_report(&d, 5);
    let top_line = rendered
        .lines()
        .skip_while(|l| !l.starts_with("top regressed"))
        .nth(1)
        .expect("at least one regressed path");
    assert!(
        top_line.contains("expansion;probe-round"),
        "report top line: {top_line}"
    );

    // The history-record spans section round-trips the same profile.
    let record = report::bench_pipeline_json(&atlas, "loc-test", "tiny", 2019, 0.0, 0.0);
    let parsed = cm_bench::jsonv::Json::parse(&record).expect("record parses");
    let from_record =
        cm_bench::tracediff::profile_history_record(&parsed).expect("record profiles");
    assert_profiles_match(&from_record, &base);

    // The wall flamegraph is a superset of the cost flamegraph's paths,
    // and the probe counters survive the JSONL round trip.
    let probes_flame = base.collapsed(Some("probes"));
    assert!(
        probes_flame
            .lines()
            .any(|l| l.starts_with("sweep;probe-round;region-0 ")),
        "probes flame:\n{probes_flame}"
    );
}
